//! The facility: rack composition, row airflow coupling, the epoch
//! settlement loop, and the facility-wide report.

use std::sync::mpsc;
use std::thread;

use serde::{Deserialize, Serialize};
use sprint_archsim::config::MachineConfig;
use sprint_cluster::{
    ClusterBuildError, ClusterBuilder, ClusterOutcome, ClusterPolicy, ClusterReport,
    ClusterSession, ClusterTask, NodeSpec, Placement, PowerPolicy, RackSupplyParams,
};
use sprint_core::config::SprintConfig;
use sprint_core::fault::{FaultPlan, FaultRates, FaultResponse};
use sprint_thermal::grid::GridThermalParams;
use sprint_workloads::traffic::TrafficParams;

use crate::policy::FacilityPolicy;
use crate::shard::{self, Command, RackInputs, Reply};

/// Plain-data recipe for one rack — everything a worker thread needs to
/// build the rack's (non-`Send`) [`ClusterSession`] locally.
#[derive(Debug, Clone)]
pub struct RackSpec {
    /// The rack's thermal grid parameters (one node per floorplan core).
    pub thermal: GridThermalParams,
    /// Per-node machine configuration (every node, unless
    /// [`node_specs`](Self::node_specs) overrides per node).
    pub machine: MachineConfig,
    /// Per-node specs for a heterogeneous rack: machine config,
    /// nameplate share weight, thermal-footprint weight. `None` — the
    /// default — clones [`machine`](Self::machine) onto every node,
    /// byte-identically to the pre-heterogeneity path.
    pub node_specs: Option<Vec<NodeSpec>>,
    /// Idle-node ranking for the admission pass (default
    /// [`Placement::PolicyDefault`], the pre-refactor order).
    pub placement: Placement,
    /// Sprint configuration admitted tasks run under.
    pub config: SprintConfig,
    /// The rack's local thermal admission policy.
    pub policy: ClusterPolicy,
    /// The rack's local power admission policy.
    pub power: PowerPolicy,
    /// Shared rack power-delivery pool, if the rack runs on one. The
    /// commissioned `cap_w` is the rack's PDU nameplate — the ceiling
    /// no facility settlement will ever raise a live cap above.
    pub supply: Option<RackSupplyParams>,
    /// The rack's arrival queue.
    pub tasks: Vec<ClusterTask>,
    /// Seeded fault schedule injected into this rack, if any.
    pub fault: Option<FaultPlan>,
    /// Per-node retained trace samples (0 disables tracing).
    pub trace_capacity: usize,
    /// Hard wall on the rack's simulated time, seconds.
    pub max_time_s: f64,
}

impl RackSpec {
    /// Builds the rack's session — exactly the [`ClusterBuilder`] call
    /// a standalone study would make, so a one-rack facility and a
    /// hand-built cluster start from identical state.
    ///
    /// # Panics
    ///
    /// Panics where [`try_build`](Self::try_build) would err.
    pub fn build(&self) -> ClusterSession {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the rack's session, reporting unsatisfiable provisioning
    /// as a typed error instead of panicking.
    pub fn try_build(&self) -> Result<ClusterSession, ClusterBuildError> {
        let mut builder = ClusterBuilder::new(self.thermal.clone())
            .machine(self.machine.clone())
            .config(self.config.clone())
            .policy(self.policy.clone())
            .power_policy(self.power)
            .placement(self.placement)
            .tasks(self.tasks.iter().copied())
            .trace_capacity(self.trace_capacity)
            .max_time_s(self.max_time_s);
        if let Some(specs) = &self.node_specs {
            builder = builder.node_specs(specs.iter().cloned());
        }
        if let Some(supply) = self.supply {
            builder = builder.rack_supply(supply);
        }
        if let Some(fault) = &self.fault {
            builder = builder.fault_plan(fault.clone());
        }
        builder.try_build()
    }
}

/// Row-level shared-airflow coupling: racks in a row share one CRAC
/// unit; heat the CRAC cannot extract recirculates and lifts every
/// inlet in the row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RowParams {
    /// Consecutive racks per row (the last row may be short).
    pub racks_per_row: usize,
    /// Inlet rise per watt of row heat beyond the CRAC capacity, K/W.
    /// Zero disables the coupling entirely (inlets are never touched).
    pub recirc_k_per_w: f64,
    /// Heat one row's CRAC extracts before recirculation begins, watts.
    pub crac_capacity_w: f64,
    /// Ceiling on any rack inlet, Celsius — containment louvres dump
    /// excess heat past this point. Must stay below every rack's
    /// thermal limit (and any PCM melting point).
    pub max_inlet_c: f64,
}

/// Summary of a facility run: the union tail statistics every facility
/// study ranks policies by, facility-wide counters, and each rack's
/// full [`ClusterReport`]. Byte-identical for a given facility at any
/// worker-thread count (see [`digest`](Self::digest)).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FacilityReport {
    /// Racks simulated.
    pub racks: usize,
    /// Settlement epochs run.
    pub epochs: u64,
    /// Tasks completed across the facility.
    pub completed: usize,
    /// Tasks submitted across the facility.
    pub total_tasks: usize,
    /// Mean task latency over all racks, seconds (NaN if none).
    pub mean_latency_s: f64,
    /// Facility-wide 95th-percentile latency (nearest rank), seconds
    /// (NaN if none).
    pub p95_latency_s: f64,
    /// Facility-wide 99th-percentile latency (nearest rank), seconds
    /// (NaN if none) — the headline figure of merit.
    pub p99_latency_s: f64,
    /// Worst task latency anywhere, seconds (NaN if none — an empty
    /// facility has no latencies, not zero-latency tasks, matching
    /// every other latency statistic here and in [`ClusterReport`]).
    pub max_latency_s: f64,
    /// Completion time of the last task anywhere, seconds (0 if none).
    pub makespan_s: f64,
    /// Hottest cell in any rack over the run, Celsius.
    pub peak_junction_c: f64,
    /// Hottest inlet the row coupling ever applied, Celsius (the base
    /// inlet when the coupling never fired).
    pub peak_inlet_c: f64,
    /// Thermal shed-pass preemptions, summed over racks.
    pub sheds: usize,
    /// Power-emergency shed-pass preemptions, summed over racks.
    pub power_sheds: usize,
    /// Supply-ended sprints (brownout casualties), summed over racks.
    pub supply_aborts: usize,
    /// Fault-plan events applied, summed over racks.
    pub fault_events: usize,
    /// Sensor faults injected, summed over racks.
    pub sensor_faults: usize,
    /// Supply faults injected, summed over racks.
    pub supply_faults: usize,
    /// Node crashes applied, summed over racks.
    pub node_crashes: usize,
    /// Treat-as-hot failsafe sprint preemptions, summed over racks.
    pub failsafe_preemptions: usize,
    /// Crash-lost tasks re-enqueued, summed over racks.
    pub requeues: usize,
    /// Losing competitive-duplicate replicas preempted when their
    /// task's winner committed, summed over racks.
    pub cancelled_copies: usize,
    /// Stranded crash-retries the requeue router moved between racks
    /// (zero unless [`FacilityBuilder::route_requeues`] is on). Each
    /// migration appears in both the origin's and destination's
    /// per-rack totals; [`total_tasks`](Self::total_tasks) is already
    /// net of the double count.
    pub migrated_tasks: usize,
    /// Tasks that exhausted their crash-retry budget, summed over racks.
    pub failed_tasks: usize,
    /// Nodes quarantined by a mid-task crash, summed over racks.
    pub quarantined_nodes: usize,
    /// Tasks neither completed nor failed at the end of the run,
    /// summed over racks.
    pub outstanding_tasks: usize,
    /// True when every rack drained its queue (false if any hit its
    /// time limit with tasks outstanding).
    pub all_drained: bool,
    /// Per-rack reports, in rack index order.
    pub rack_reports: Vec<ClusterReport>,
}

impl FacilityReport {
    /// FNV-1a fingerprint over every scalar field and every per-task
    /// outcome (exact `f64` bits). Two runs of the same facility agree
    /// on this digest if and only if they are byte-identical in every
    /// figure a study could quote — the determinism tests pin it across
    /// worker-thread counts.
    pub fn digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bits: u64| {
            hash ^= bits;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        };
        for bits in [
            self.racks as u64,
            self.epochs,
            self.completed as u64,
            self.total_tasks as u64,
            self.mean_latency_s.to_bits(),
            self.p95_latency_s.to_bits(),
            self.p99_latency_s.to_bits(),
            self.max_latency_s.to_bits(),
            self.makespan_s.to_bits(),
            self.peak_junction_c.to_bits(),
            self.peak_inlet_c.to_bits(),
            self.sheds as u64,
            self.power_sheds as u64,
            self.supply_aborts as u64,
            self.fault_events as u64,
            self.sensor_faults as u64,
            self.supply_faults as u64,
            self.node_crashes as u64,
            self.failsafe_preemptions as u64,
            self.requeues as u64,
            self.cancelled_copies as u64,
            self.migrated_tasks as u64,
            self.failed_tasks as u64,
            self.quarantined_nodes as u64,
            self.outstanding_tasks as u64,
            self.all_drained as u64,
        ] {
            eat(bits);
        }
        for report in &self.rack_reports {
            eat(cluster_report_digest(report));
        }
        hash
    }

    /// The facility-wide task-conservation invariant: every submitted
    /// task is accounted for as completed, failed-after-retries, or
    /// outstanding at the end of the run — faults may degrade service,
    /// never lose work.
    pub fn task_conservation_holds(&self) -> bool {
        self.completed + self.failed_tasks + self.outstanding_tasks == self.total_tasks
            && self
                .rack_reports
                .iter()
                .all(|r| r.task_conservation_holds())
    }
}

/// FNV-1a fingerprint of one rack's [`ClusterReport`]: every scalar
/// field, every task outcome, and every node report's scalars, all at
/// exact `f64` bits. Two reports agree on this digest exactly when they
/// are byte-identical in every figure a study could quote — the
/// facility equivalence tests use it to show a one-rack facility
/// reproduces a standalone [`ClusterSession`] run, and the cluster
/// crate's golden-equivalence tests use the same digest (via
/// [`ClusterReport::digest`], which this delegates to) to show the
/// event-driven core reproduces the lockstep oracle.
pub fn cluster_report_digest(report: &ClusterReport) -> u64 {
    report.digest()
}

/// Nearest-rank percentile over pre-collected latencies (`q` in
/// `(0, 1]`; NaN when empty) — the same contract as the cluster
/// report's, applied to the union of every rack's outcomes.
fn percentile_s(sorted_latencies: &[f64], q: f64) -> f64 {
    if sorted_latencies.is_empty() {
        return f64::NAN;
    }
    let rank =
        ((q * sorted_latencies.len() as f64).ceil() as usize).clamp(1, sorted_latencies.len());
    sorted_latencies[rank - 1]
}

/// A facility configuration [`FacilityBuilder::try_build`] rejects.
/// [`FacilityBuilder::build`] panics with the identical [`Display`]
/// message, so callers migrating from the panicking path keep their
/// diagnostics byte-for-byte.
///
/// [`Display`]: std::fmt::Display
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FacilityBuildError {
    /// The settlement epoch is zero windows long.
    ZeroEpochWindows,
    /// [`FacilityPolicy::GlobalRationed`] without a facility cap.
    MissingFacilityCap,
    /// The facility feed policy rejected the cap/floor/slot shape
    /// (message from [`FacilityPolicy::validate`]).
    Policy(String),
    /// A non-positive or non-finite facility cap.
    BadFacilityCap,
    /// A facility cap with no rack supplies to enforce it through.
    CapWithoutRackSupply,
    /// A starved rack would head-of-line block forever: the minimum
    /// dealt share cannot carry a sprint and the defer window is
    /// infinite.
    StarvedRackInfiniteDefer {
        /// The smallest share the facility tier can pin a rack at, W.
        min_share_w: f64,
        /// The per-sprint booking local admission demands, W.
        sprint_draw_w: f64,
    },
    /// An invalid row-coupling shape (message text matches the old
    /// panic).
    Row(&'static str),
    /// Traffic routing with fewer tasks than racks.
    SparseTraffic,
    /// A per-rack fault plan the cluster tier would reject (message
    /// from the cluster's own checks).
    Fault(String),
    /// A rack spec any [`ClusterBuilder`] check rejects.
    Rack(ClusterBuildError),
}

impl std::fmt::Display for FacilityBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroEpochWindows => write!(f, "an epoch needs at least one window"),
            Self::MissingFacilityCap => {
                write!(f, "global rationing needs a facility_cap_w to divide")
            }
            Self::Policy(msg) | Self::Fault(msg) => write!(f, "{msg}"),
            Self::BadFacilityCap => write!(f, "a facility cap must be positive and finite"),
            Self::CapWithoutRackSupply => write!(
                f,
                "a facility cap moves each rack's live supply cap: give racks a rack_supply"
            ),
            Self::StarvedRackInfiniteDefer {
                min_share_w,
                sprint_draw_w,
            } => write!(
                f,
                "a {min_share_w} W share cannot carry a {sprint_draw_w} W sprint: \
                 an infinite defer window would head-of-line block a starved \
                 rack until its time limit — use a finite defer_s"
            ),
            Self::Row(msg) => write!(f, "{msg}"),
            Self::SparseTraffic => write!(f, "traffic must carry at least one task per rack"),
            Self::Rack(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FacilityBuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Rack(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ClusterBuildError> for FacilityBuildError {
    fn from(e: ClusterBuildError) -> Self {
        Self::Rack(e)
    }
}

/// Composes rack specs, row coupling and the facility feed into a
/// [`Facility`]. Defaults mirror [`ClusterBuilder`]'s: the paper's
/// 16-core machine per node, `hpca_parallel` sprints, greedy-headroom
/// thermal admission, power-oblivious local admission, no tracing.
#[derive(Debug)]
pub struct FacilityBuilder {
    racks: usize,
    thermal: GridThermalParams,
    machine: MachineConfig,
    node_specs: Option<Vec<NodeSpec>>,
    placement: Placement,
    config: SprintConfig,
    policy: ClusterPolicy,
    power: PowerPolicy,
    supply: Option<RackSupplyParams>,
    trace_capacity: usize,
    max_time_s: f64,
    row: Option<RowParams>,
    facility_policy: FacilityPolicy,
    facility_cap_w: Option<f64>,
    epoch_windows: u64,
    traffic: Option<TrafficParams>,
    rack_tasks: Vec<Vec<ClusterTask>>,
    rack_faults: Vec<Option<FaultPlan>>,
    fault_rates: Option<FaultRates>,
    fault_seed: u64,
    fault_response: FaultResponse,
    event_driven: bool,
    route_requeues: bool,
}

impl FacilityBuilder {
    /// Starts a facility of `racks` identical racks (specialise per
    /// rack afterwards via [`tasks_on`](Self::tasks_on)).
    ///
    /// # Panics
    ///
    /// Panics on zero racks.
    pub fn new(racks: usize) -> Self {
        assert!(racks >= 1, "a facility needs at least one rack");
        Self {
            racks,
            thermal: GridThermalParams::rack(4, 4),
            machine: MachineConfig::hpca(),
            node_specs: None,
            placement: Placement::PolicyDefault,
            config: SprintConfig::hpca_parallel(),
            policy: ClusterPolicy::greedy_default(),
            power: PowerPolicy::Oblivious,
            supply: None,
            trace_capacity: 0,
            max_time_s: 10.0,
            row: None,
            facility_policy: FacilityPolicy::PerRack,
            facility_cap_w: None,
            epoch_windows: 200,
            traffic: None,
            rack_tasks: vec![Vec::new(); racks],
            rack_faults: vec![None; racks],
            fault_rates: None,
            fault_seed: 2012,
            fault_response: FaultResponse::Aware,
            event_driven: false,
            route_requeues: false,
        }
    }

    /// Runs every rack on the event-driven core instead of the lockstep
    /// stepper (default off). Idle and resting nodes then cost nothing
    /// between their thermally-relevant ticks, which is where sparse
    /// open-arrival facilities spend most of their windows. By the
    /// cluster crate's golden-equivalence invariant the facility report
    /// digest is byte-identical either way — the determinism tests pin
    /// this at several worker-thread counts — so this is purely a
    /// wall-clock knob.
    pub fn event_driven(mut self, event_driven: bool) -> Self {
        self.event_driven = event_driven;
        self
    }

    /// Sets every rack's thermal grid parameters.
    pub fn rack_thermal(mut self, params: GridThermalParams) -> Self {
        self.thermal = params;
        self
    }

    /// Sets every rack's per-node machine configuration.
    pub fn machine(mut self, config: MachineConfig) -> Self {
        self.machine = config;
        self
    }

    /// Makes every rack heterogeneous: one [`NodeSpec`] per node
    /// (machine config, nameplate share weight, thermal-footprint
    /// weight), in node index order. A homogeneous spec list is
    /// byte-identical to the [`machine`](Self::machine) clone path.
    pub fn node_specs(mut self, specs: impl IntoIterator<Item = NodeSpec>) -> Self {
        self.node_specs = Some(specs.into_iter().collect());
        self
    }

    /// Sets every rack's idle-node placement ranking (default
    /// [`Placement::PolicyDefault`], the pre-refactor coolest-first
    /// order; [`Placement::CheapestHeadroom`] is the cost-aware pass
    /// a heterogeneous fleet wants).
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Routes crash-retry requeues through facility placement (default
    /// off): a task waiting out its retry backoff at a settlement
    /// barrier is drained off its rack and re-placed on the
    /// least-loaded live rack — possibly a different one, which is the
    /// fix for retry-in-place head-of-line blocking when the origin
    /// rack's nodes are quarantined. Off, or on with no crashes, the
    /// run is byte-identical to the unrouted facility.
    pub fn route_requeues(mut self, route: bool) -> Self {
        self.route_requeues = route;
        self
    }

    /// Sets the sprint configuration admitted tasks run under.
    pub fn config(mut self, config: SprintConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets every rack's local thermal admission policy.
    pub fn policy(mut self, policy: ClusterPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets every rack's local power admission policy.
    pub fn power_policy(mut self, power: PowerPolicy) -> Self {
        self.power = power;
        self
    }

    /// Puts every rack on its own shared power-delivery pool; the
    /// commissioned cap is the rack's PDU nameplate. Required for
    /// [`FacilityPolicy::GlobalRationed`] (the global tier moves the
    /// pool's live cap).
    pub fn rack_supply(mut self, params: RackSupplyParams) -> Self {
        self.supply = Some(params);
        self
    }

    /// Limits each node's retained trace (0, the default, disables it).
    pub fn trace_capacity(mut self, samples: usize) -> Self {
        self.trace_capacity = samples;
        self
    }

    /// Hard wall on each rack's simulated time, seconds.
    pub fn max_time_s(mut self, limit_s: f64) -> Self {
        self.max_time_s = limit_s;
        self
    }

    /// Enables row-level shared-airflow coupling (disabled by default:
    /// inlets are never touched).
    pub fn row(mut self, row: RowParams) -> Self {
        self.row = Some(row);
        self
    }

    /// Sets the facility-level admission tier (default
    /// [`FacilityPolicy::PerRack`], which never intervenes).
    pub fn facility_policy(mut self, policy: FacilityPolicy) -> Self {
        self.facility_policy = policy;
        self
    }

    /// Sets the facility feed cap, watts: rationed dynamically by
    /// [`FacilityPolicy::GlobalRationed`], or pinned as a static equal
    /// split under [`FacilityPolicy::PerRack`] (the facility-oblivious
    /// baseline at the same total budget). Unset means an uncapped
    /// feed: racks keep their commissioned nameplates.
    pub fn facility_cap_w(mut self, cap_w: f64) -> Self {
        self.facility_cap_w = Some(cap_w);
        self
    }

    /// Sampling windows per settlement epoch (default 200 — with the
    /// 1 µs window that is a 0.2 ms settlement cadence, comfortably
    /// faster than the compressed thermal constants it steers).
    pub fn epoch_windows(mut self, windows: u64) -> Self {
        self.epoch_windows = windows;
        self
    }

    /// Feeds the facility from the seeded traffic generator: each rack
    /// derives its own stream from `base` — a distinct seed, a diurnal
    /// phase rotated by `rack / racks` of a period (rack peaks do not
    /// coincide, which is precisely the headroom a global tier can
    /// harvest), and an equal share of `base.tasks` (earlier racks take
    /// the remainder).
    pub fn traffic(mut self, base: TrafficParams) -> Self {
        self.traffic = Some(base);
        self
    }

    /// Replaces one rack's arrival queue with an explicit task list
    /// (overrides [`traffic`](Self::traffic) for that rack).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range rack index.
    pub fn tasks_on(mut self, rack: usize, tasks: impl IntoIterator<Item = ClusterTask>) -> Self {
        self.rack_tasks[rack].extend(tasks);
        self
    }

    /// Injects seeded faults into every rack: each derives its own
    /// [`FaultPlan::seeded`] schedule from
    /// [`fault_seed`](Self::fault_seed) (distinct per-rack streams, the
    /// same mixing as rack traffic) over a horizon covering the rack's
    /// time limit. All-zero rates leave every rack fault-free.
    pub fn fault_rates(mut self, rates: FaultRates) -> Self {
        self.fault_rates = Some(rates);
        self
    }

    /// Seeds the per-rack fault streams (default 2012).
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Sets every derived fault plan's scheduler reaction (default
    /// [`FaultResponse::Aware`]: failsafe throttles, quarantine,
    /// retry). [`FaultResponse::Oblivious`] is the comparison baseline
    /// that believes faulted telemetry.
    pub fn fault_response(mut self, response: FaultResponse) -> Self {
        self.fault_response = response;
        self
    }

    /// Installs an explicit fault plan on one rack (overrides
    /// [`fault_rates`](Self::fault_rates) for that rack).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range rack index.
    pub fn fault_on(mut self, rack: usize, plan: FaultPlan) -> Self {
        self.rack_faults[rack] = Some(plan);
        self
    }

    /// Builds the facility: per-rack specs (tasks routed from traffic
    /// or the explicit lists) plus the settlement configuration.
    ///
    /// # Panics
    ///
    /// Panics where [`try_build`](Self::try_build) would err, with the
    /// identical message.
    pub fn build(self) -> Facility {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the facility, reporting an invalid settlement
    /// configuration as a typed [`FacilityBuildError`] instead of
    /// panicking: zero epoch windows; global rationing without rack
    /// supplies or a facility cap, or with a cap/floor the racks cannot
    /// satisfy; a row coupling whose inlet ceiling violates a rack's
    /// thermal limit or PCM melting point; traffic with fewer tasks
    /// than racks; a fault plan targeting nodes a rack does not have;
    /// or a rack config any [`ClusterBuilder`] check rejects.
    pub fn try_build(self) -> Result<Facility, FacilityBuildError> {
        if self.epoch_windows < 1 {
            return Err(FacilityBuildError::ZeroEpochWindows);
        }
        let nameplate: Vec<f64> = (0..self.racks)
            .map(|_| self.supply.map_or(f64::INFINITY, |s| s.cap_w))
            .collect();
        // The smallest share the facility tier can pin a rack at: the
        // rationing floor, or the static equal split of a capped
        // oblivious facility. `None` when the tier never moves caps.
        let min_share_w = match self.facility_policy {
            FacilityPolicy::GlobalRationed { floor_w, .. } => {
                let cap = self
                    .facility_cap_w
                    .ok_or(FacilityBuildError::MissingFacilityCap)?;
                self.facility_policy
                    .check(cap, &nameplate)
                    .map_err(FacilityBuildError::Policy)?;
                Some(floor_w)
            }
            FacilityPolicy::PerRack => {
                if let Some(cap) = self.facility_cap_w {
                    if !(cap.is_finite() && cap > 0.0) {
                        return Err(FacilityBuildError::BadFacilityCap);
                    }
                }
                self.facility_cap_w.map(|cap| cap / self.racks as f64)
            }
        };
        if let Some(min_share_w) = min_share_w {
            if self.supply.is_none() {
                return Err(FacilityBuildError::CapWithoutRackSupply);
            }
            // A rack parked at the minimum share with power-rationed
            // local admission can never admit a sprint if that share
            // cannot carry one; with an infinite defer window its queue
            // would head-of-line block until the time limit. Demand a
            // finite defer so starved racks degrade to sustained runs.
            if let PowerPolicy::Rationed { sprint_draw_w, .. } = self.power {
                if min_share_w < sprint_draw_w
                    && self.policy.defer_window_s() == Some(f64::INFINITY)
                {
                    return Err(FacilityBuildError::StarvedRackInfiniteDefer {
                        min_share_w,
                        sprint_draw_w,
                    });
                }
            }
        }
        if let Some(row) = self.row {
            if row.racks_per_row < 1 {
                return Err(FacilityBuildError::Row("a row needs at least one rack"));
            }
            if !(row.recirc_k_per_w >= 0.0 && row.recirc_k_per_w.is_finite()) {
                return Err(FacilityBuildError::Row(
                    "recirculation coefficient must be finite and non-negative",
                ));
            }
            if row.crac_capacity_w < 0.0 {
                return Err(FacilityBuildError::Row(
                    "CRAC capacity must be non-negative",
                ));
            }
            if row.recirc_k_per_w > 0.0 {
                if row.max_inlet_c < self.thermal.ambient_c {
                    return Err(FacilityBuildError::Row(
                        "the inlet ceiling sits below the commissioned ambient",
                    ));
                }
                if row.max_inlet_c >= self.thermal.t_max_c {
                    return Err(FacilityBuildError::Row(
                        "the inlet ceiling must stay below the racks' thermal limit",
                    ));
                }
                for layer in &self.thermal.layers {
                    if let Some(pc) = &layer.phase_change {
                        if row.max_inlet_c >= pc.melt_temp_c {
                            return Err(FacilityBuildError::Row(
                                "the inlet ceiling must stay below the PCM melting point",
                            ));
                        }
                    }
                }
            }
        }
        // Derive per-rack fault plans: an explicit plan wins, otherwise
        // the seeded rates (each rack on its own stream, mixed exactly
        // as rack traffic seeds are) over a horizon covering the rack's
        // whole time limit.
        let nodes = self.thermal.floorplan.core_count();
        let window_s = self.config.sample_window_ps as f64 * 1e-12;
        let horizon_windows = (self.max_time_s / window_s).ceil() as u64;
        let mut faults = Vec::with_capacity(self.racks);
        for rack in 0..self.racks {
            let plan = match (&self.rack_faults[rack], self.fault_rates) {
                (Some(plan), _) => Some(plan.clone()),
                (None, Some(rates)) => {
                    let seed = self
                        .fault_seed
                        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(rack as u64 + 1));
                    Some(
                        FaultPlan::seeded(seed, nodes, horizon_windows, rates)
                            .with_response(self.fault_response),
                    )
                }
                (None, None) => None,
            };
            if let Some(plan) = &plan {
                check_fault_plan(plan, nodes)?;
            }
            faults.push(plan);
        }
        let mut specs = Vec::with_capacity(self.racks);
        for (rack, fault) in faults.into_iter().enumerate() {
            let tasks = if !self.rack_tasks[rack].is_empty() {
                self.rack_tasks[rack].clone()
            } else if let Some(base) = &self.traffic {
                if base.tasks < self.racks {
                    return Err(FacilityBuildError::SparseTraffic);
                }
                rack_traffic(base, rack, self.racks)
                    .generate()
                    .into_iter()
                    .map(|a| ClusterTask::new(a.kind, a.size, a.threads, a.arrival_s))
                    .collect()
            } else {
                Vec::new()
            };
            specs.push(RackSpec {
                thermal: self.thermal.clone(),
                machine: self.machine.clone(),
                node_specs: self.node_specs.clone(),
                placement: self.placement,
                config: self.config.clone(),
                policy: self.policy.clone(),
                power: self.power,
                supply: self.supply,
                tasks,
                fault,
                trace_capacity: self.trace_capacity,
                max_time_s: self.max_time_s,
            });
        }
        // Fail fast on rack configs ClusterBuilder would reject — at
        // build time on the caller's thread, not inside a worker.
        drop(specs[0].try_build()?);
        Ok(Facility {
            specs,
            row: self.row,
            policy: self.facility_policy,
            facility_cap_w: self.facility_cap_w.unwrap_or(f64::INFINITY),
            epoch_windows: self.epoch_windows,
            event_driven: self.event_driven,
            route_requeues: self.route_requeues,
        })
    }
}

/// The cluster tier's fault-plan shape checks, as values: every rack's
/// plan is vetted on the builder's thread, not inside a worker whose
/// panic would poison the facility channels mid-run.
fn check_fault_plan(plan: &FaultPlan, nodes: usize) -> Result<(), FacilityBuildError> {
    if plan.backoff_windows == 0 {
        return Err(FacilityBuildError::Fault(
            "retry backoff must be at least one window".into(),
        ));
    }
    if let Some(e) = plan.events.iter().find(|e| (e.node as usize) >= nodes) {
        return Err(FacilityBuildError::Fault(format!(
            "fault plan targets node {} but the cluster has {nodes}",
            e.node
        )));
    }
    if !plan
        .events
        .windows(2)
        .all(|p| (p[0].window, p[0].node) <= (p[1].window, p[1].node))
    {
        return Err(FacilityBuildError::Fault(
            "fault plan must be sorted by (window, node)".into(),
        ));
    }
    Ok(())
}

/// Derives rack `rack`'s traffic stream from the facility-wide base:
/// distinct seed, rotated diurnal phase, an equal task share.
fn rack_traffic(base: &TrafficParams, rack: usize, racks: usize) -> TrafficParams {
    let mut params = base.clone();
    params.seed = base
        .seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(rack as u64 + 1));
    params.diurnal_phase = base.diurnal_phase + rack as f64 / racks as f64;
    params.tasks = base.tasks / racks + usize::from(rack < base.tasks % racks);
    params
}

/// N racks, their row coupling, and the facility admission tier. Built
/// by [`FacilityBuilder`]; [`run`](Self::run) executes the settlement
/// loop on a worker pool.
#[derive(Debug)]
pub struct Facility {
    specs: Vec<RackSpec>,
    row: Option<RowParams>,
    policy: FacilityPolicy,
    facility_cap_w: f64,
    epoch_windows: u64,
    event_driven: bool,
    route_requeues: bool,
}

impl Facility {
    /// Racks in the facility.
    pub fn racks(&self) -> usize {
        self.specs.len()
    }

    /// Tasks submitted across all racks.
    pub fn total_tasks(&self) -> usize {
        self.specs.iter().map(|s| s.tasks.len()).sum()
    }

    /// One rack's spec (e.g. to build a standalone comparator session).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range rack index.
    pub fn spec(&self, rack: usize) -> &RackSpec {
        &self.specs[rack]
    }

    /// Runs the facility to completion on `threads` persistent workers
    /// (clamped to the rack count) and reports. The report is
    /// byte-identical at any thread count: racks interact only through
    /// the single-threaded settlement barrier, which consumes telemetry
    /// in rack index order.
    ///
    /// # Panics
    ///
    /// Panics on zero threads, or if a worker thread panics (a rack
    /// config error or a poisoned channel) — the worker's own message
    /// is forwarded and re-raised rather than deadlocking the
    /// settlement barrier on the dead worker's racks.
    pub fn run(&self, threads: usize) -> FacilityReport {
        assert!(threads >= 1, "the facility needs at least one worker");
        let n = self.specs.len();
        let workers = threads.min(n);
        let nameplate: Vec<f64> = self
            .specs
            .iter()
            .map(|s| s.supply.map_or(f64::INFINITY, |p| p.cap_w))
            .collect();
        let base_inlet: Vec<f64> = self.specs.iter().map(|s| s.thermal.ambient_c).collect();
        // Racks whose fault plan runs degradation-aware report their
        // quarantine losses to the feed tier: the settlement sees a
        // dead node's share of the rack nameplate as gone and re-deals
        // it. Oblivious racks keep claiming their full nameplate.
        let fault_aware: Vec<bool> = self
            .specs
            .iter()
            .map(|s| {
                s.fault
                    .as_ref()
                    .is_some_and(|p| p.response == FaultResponse::Aware)
            })
            .collect();
        // The feed tier mirrors the supply tier's decommissioning rule
        // (the last commissioned node always keeps the full feed): even
        // a fully-quarantined rack is never ceded below one node's
        // share, so the settlement can never provision a rack's busbar
        // to the zero watts `RackSupply::set_cap_w` rejects.
        let min_alive: Vec<f64> = self
            .specs
            .iter()
            .map(|s| 1.0 / s.thermal.floorplan.core_count() as f64)
            .collect();

        thread::scope(|scope| {
            let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
            let mut commands = Vec::with_capacity(workers);
            for w in 0..workers {
                let (cmd_tx, cmd_rx) = mpsc::channel::<Command>();
                commands.push(cmd_tx);
                let owned: Vec<(usize, RackSpec)> = (0..n)
                    .filter(|r| r % workers == w)
                    .map(|r| (r, self.specs[r].clone()))
                    .collect();
                let tx = reply_tx.clone();
                let panic_tx = reply_tx.clone();
                let event_driven = self.event_driven;
                let route_requeues = self.route_requeues;
                scope.spawn(move || {
                    // Forward a worker panic through the reply channel
                    // before re-raising it: with several workers, the
                    // survivors keep the channel open, so without this
                    // the settlement barrier would wait on the dead
                    // worker's racks forever instead of failing.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        shard::worker(owned, event_driven, route_requeues, cmd_rx, tx)
                    }));
                    if let Err(payload) = result {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        let _ = panic_tx.send(Reply::Panic(msg));
                        std::panic::resume_unwind(payload);
                    }
                });
            }
            drop(reply_tx);

            let mut last_inlet = base_inlet.clone();
            let mut last_cap = nameplate.clone();
            let mut heat = vec![0.0f64; n];
            let mut demand = vec![0usize; n];
            let mut alive = vec![1.0f64; n];
            let mut terminal = vec![false; n];
            let mut epochs = 0u64;
            let mut peak_inlet_c = base_inlet.iter().copied().fold(f64::MIN, f64::max);
            // Requeue routing state: tasks drained at the last barrier
            // (slotted by origin rack so the routing order is worker-
            // count independent) and their placements, injected at the
            // next epoch's start.
            let rack_nodes: Vec<f64> = self
                .specs
                .iter()
                .map(|s| s.thermal.floorplan.core_count() as f64)
                .collect();
            let mut stranded_slots: Vec<Vec<ClusterTask>> = vec![Vec::new(); n];
            let mut pending: Vec<Vec<ClusterTask>> = vec![Vec::new(); n];

            loop {
                // Settle, in rack index order, from last epoch's
                // telemetry: facility cap shares (dealt against each
                // rack's *effective* nameplate — a degradation-aware
                // rack that quarantined nodes cedes their share of the
                // feed back to the pool)...
                let effective: Vec<f64> = (0..n)
                    .map(|r| {
                        if fault_aware[r] {
                            nameplate[r] * alive[r].max(min_alive[r])
                        } else {
                            nameplate[r]
                        }
                    })
                    .collect();
                let caps = self.policy.settle(self.facility_cap_w, &effective, &demand);
                // ...and row inlets.
                let mut inputs = vec![RackInputs::default(); n];
                for r in 0..n {
                    inputs[r].inject = std::mem::take(&mut pending[r]);
                }
                if let Some(row) = self.row.filter(|r| r.recirc_k_per_w > 0.0) {
                    let rows = n.div_ceil(row.racks_per_row);
                    let mut row_heat = vec![0.0f64; rows];
                    for r in 0..n {
                        row_heat[r / row.racks_per_row] += heat[r];
                    }
                    for r in 0..n {
                        let excess =
                            (row_heat[r / row.racks_per_row] - row.crac_capacity_w).max(0.0);
                        let inlet =
                            (base_inlet[r] + row.recirc_k_per_w * excess).min(row.max_inlet_c);
                        if inlet.to_bits() != last_inlet[r].to_bits() {
                            inputs[r].inlet_c = Some(inlet);
                            last_inlet[r] = inlet;
                            peak_inlet_c = peak_inlet_c.max(inlet);
                        }
                    }
                }
                if let Some(caps) = caps {
                    for r in 0..n {
                        if caps[r].to_bits() != last_cap[r].to_bits() {
                            inputs[r].cap_w = Some(caps[r]);
                            last_cap[r] = caps[r];
                        }
                    }
                }

                let mut inputs: Vec<Option<RackInputs>> = inputs.into_iter().map(Some).collect();
                for (w, cmd) in commands.iter().enumerate() {
                    let worker_inputs: Vec<RackInputs> = (0..n)
                        .filter(|r| r % workers == w)
                        .map(|r| inputs[r].take().expect("each rack owned by one worker"))
                        .collect();
                    cmd.send(Command::Advance {
                        windows: self.epoch_windows,
                        inputs: worker_inputs,
                    })
                    .expect("worker thread hung up mid-run");
                }
                for _ in 0..n {
                    match reply_rx.recv().expect("worker thread hung up mid-epoch") {
                        Reply::Epoch(rack, stats, stranded) => {
                            heat[rack] = stats.heat_w;
                            demand[rack] = stats.backlog + stats.sprinting;
                            alive[rack] = stats.alive_frac;
                            terminal[rack] = stats.terminal;
                            stranded_slots[rack] = stranded;
                        }
                        Reply::Final(..) => unreachable!("Final before Finish"),
                        Reply::Panic(msg) => panic!("facility worker panicked: {msg}"),
                    }
                }
                // Re-place stranded crash-retries through facility
                // placement: cheapest live rack first — non-terminal,
                // then lowest load per *alive* node (a rack that
                // quarantined half its fleet looks twice as loaded),
                // ties to the lowest index. Origin-rack order then
                // drain order keeps the routing deterministic at any
                // worker count.
                for slot in stranded_slots.iter_mut().take(n) {
                    for task in std::mem::take(slot) {
                        let dest = (0..n)
                            .min_by(|&a, &b| {
                                let load = |d: usize| {
                                    // A rack with no alive nodes can
                                    // serve nothing, whatever its
                                    // (empty) backlog says: rank it
                                    // behind every live rack.
                                    let alive_nodes = alive[d] * rack_nodes[d];
                                    if alive_nodes < 0.5 {
                                        f64::INFINITY
                                    } else {
                                        (demand[d] + pending[d].len()) as f64 / alive_nodes
                                    }
                                };
                                u8::from(terminal[a])
                                    .cmp(&u8::from(terminal[b]))
                                    .then(load(a).total_cmp(&load(b)))
                                    .then(a.cmp(&b))
                            })
                            .expect("a facility has at least one rack");
                        pending[dest].push(task);
                    }
                }
                epochs += 1;
                if terminal.iter().all(|&t| t) && pending.iter().all(|p| p.is_empty()) {
                    break;
                }
            }

            for cmd in &commands {
                cmd.send(Command::Finish).expect("worker thread hung up");
            }
            let mut finals: Vec<Option<(Box<ClusterReport>, ClusterOutcome)>> =
                (0..n).map(|_| None).collect();
            for _ in 0..n {
                match reply_rx.recv().expect("worker thread hung up at finish") {
                    Reply::Final(rack, report, outcome) => finals[rack] = Some((report, outcome)),
                    Reply::Epoch(..) => unreachable!("Epoch after Finish"),
                    Reply::Panic(msg) => panic!("facility worker panicked: {msg}"),
                }
            }

            let mut rack_reports = Vec::with_capacity(n);
            let mut all_drained = true;
            for slot in finals {
                let (report, outcome) = slot.expect("every rack reports exactly once");
                all_drained &= outcome == ClusterOutcome::Drained;
                rack_reports.push(*report);
            }
            self.summarise(rack_reports, epochs, peak_inlet_c, all_drained)
        })
    }

    /// Folds the per-rack reports (rack index order throughout) into
    /// the facility report.
    fn summarise(
        &self,
        rack_reports: Vec<ClusterReport>,
        epochs: u64,
        peak_inlet_c: f64,
        all_drained: bool,
    ) -> FacilityReport {
        let mut latencies: Vec<f64> = rack_reports
            .iter()
            .flat_map(|r| r.outcomes.iter().map(|o| o.latency_s()))
            .collect();
        latencies.sort_by(|a, b| a.total_cmp(b));
        let completed = latencies.len();
        let mean_latency_s = if completed == 0 {
            f64::NAN
        } else {
            latencies.iter().sum::<f64>() / completed as f64
        };
        // A routed task is counted by its origin (submitted there,
        // resolved as migrated) *and* its destination (injected as a
        // fresh submission): net the double count out so the facility
        // total is the number of distinct tasks submitted.
        let migrated: usize = rack_reports.iter().map(|r| r.migrated_tasks).sum();
        FacilityReport {
            racks: rack_reports.len(),
            epochs,
            completed,
            total_tasks: rack_reports.iter().map(|r| r.total_tasks).sum::<usize>() - migrated,
            mean_latency_s,
            p95_latency_s: percentile_s(&latencies, 0.95),
            p99_latency_s: percentile_s(&latencies, 0.99),
            max_latency_s: latencies.last().copied().unwrap_or(f64::NAN),
            makespan_s: rack_reports
                .iter()
                .map(|r| r.makespan_s)
                .fold(0.0, f64::max),
            peak_junction_c: rack_reports
                .iter()
                .map(|r| r.peak_junction_c)
                .fold(f64::MIN, f64::max),
            peak_inlet_c,
            sheds: rack_reports.iter().map(|r| r.sheds).sum(),
            power_sheds: rack_reports.iter().map(|r| r.power_sheds).sum(),
            supply_aborts: rack_reports.iter().map(|r| r.supply_aborts).sum(),
            fault_events: rack_reports.iter().map(|r| r.fault_events).sum(),
            sensor_faults: rack_reports.iter().map(|r| r.sensor_faults).sum(),
            supply_faults: rack_reports.iter().map(|r| r.supply_faults).sum(),
            node_crashes: rack_reports.iter().map(|r| r.node_crashes).sum(),
            failsafe_preemptions: rack_reports.iter().map(|r| r.failsafe_preemptions).sum(),
            requeues: rack_reports.iter().map(|r| r.requeues).sum(),
            cancelled_copies: rack_reports.iter().map(|r| r.cancelled_copies).sum(),
            migrated_tasks: migrated,
            failed_tasks: rack_reports.iter().map(|r| r.failed_tasks).sum(),
            quarantined_nodes: rack_reports.iter().map(|r| r.quarantined_nodes).sum(),
            outstanding_tasks: rack_reports.iter().map(|r| r.outstanding_tasks).sum(),
            all_drained,
            rack_reports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_cluster::TaskOutcome;

    /// A synthetic rack report whose outcomes carry exactly the given
    /// latencies (arrival 0, completion = latency), with the summary
    /// scalars the facility fold actually reads filled in consistently.
    fn rack_report_with_latencies(latencies: &[f64]) -> ClusterReport {
        let outcomes: Vec<TaskOutcome> = latencies
            .iter()
            .enumerate()
            .map(|(task, &latency_s)| TaskOutcome {
                task,
                node: 0,
                arrival_s: 0.0,
                assigned_s: 0.0,
                completed_s: latency_s,
                sprinted: false,
                copies: 1,
            })
            .collect();
        let mut sorted: Vec<f64> = latencies.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        ClusterReport {
            makespan_s: sorted.last().copied().unwrap_or(0.0),
            completed: outcomes.len(),
            total_tasks: outcomes.len(),
            mean_latency_s: sorted.iter().sum::<f64>() / sorted.len().max(1) as f64,
            p95_latency_s: percentile_s(&sorted, 0.95),
            p99_latency_s: percentile_s(&sorted, 0.99),
            max_latency_s: sorted.last().copied().unwrap_or(f64::NAN),
            peak_junction_c: 25.0,
            admitted_sprints: 0,
            denied_sprints: 0,
            sheds: 0,
            power_sheds: 0,
            supply_aborts: 0,
            fault_events: 0,
            sensor_faults: 0,
            supply_faults: 0,
            node_crashes: 0,
            failsafe_preemptions: 0,
            requeues: 0,
            cancelled_copies: 0,
            migrated_tasks: 0,
            failed_tasks: 0,
            quarantined_nodes: 0,
            outstanding_tasks: 0,
            outcomes,
            node_reports: Vec::new(),
        }
    }

    /// The facility p99 must be the nearest-rank percentile over the
    /// *merged* outcome population — not any aggregate of per-rack
    /// percentiles. This case is constructed so the merged p99 differs
    /// from every per-rack p99: rack A's 99 tasks have latencies
    /// 1..=99 s (per-rack p99 = 99), rack B's single task takes 0.5 s
    /// (per-rack p99 = 0.5); the union of 100 latencies puts rank 99 at
    /// 98 s, which matches neither.
    #[test]
    fn facility_p99_is_nearest_rank_over_merged_outcomes() {
        let a_latencies: Vec<f64> = (1..=99).map(|i| i as f64).collect();
        let rack_a = rack_report_with_latencies(&a_latencies);
        let rack_b = rack_report_with_latencies(&[0.5]);
        assert_eq!(rack_a.p99_latency_s, 99.0);
        assert_eq!(rack_b.p99_latency_s, 0.5);

        let facility = FacilityBuilder::new(2).build();
        let report = facility.summarise(vec![rack_a, rack_b], 1, 25.0, true);

        assert_eq!(report.completed, 100);
        assert_eq!(
            report.p99_latency_s, 98.0,
            "merged p99 is rank 99 of the union, not a per-rack figure"
        );
        assert_ne!(report.p99_latency_s, report.rack_reports[0].p99_latency_s);
        assert_ne!(report.p99_latency_s, report.rack_reports[1].p99_latency_s);
        // And the rest of the union tail: p95 at rank 95, max at the top.
        assert_eq!(report.p95_latency_s, 94.0);
        assert_eq!(report.max_latency_s, 99.0);
        assert_eq!(report.mean_latency_s, (4950.0 + 0.5) / 100.0);
    }

    /// A facility whose racks completed nothing has NaN latency
    /// statistics across the board — max included, matching the
    /// cluster-level empty-report contract.
    #[test]
    fn empty_facility_latency_stats_are_all_nan() {
        let facility = FacilityBuilder::new(2).build();
        let empty = vec![
            rack_report_with_latencies(&[]),
            rack_report_with_latencies(&[]),
        ];
        let report = facility.summarise(empty, 1, 25.0, true);
        assert_eq!(report.completed, 0);
        assert!(report.mean_latency_s.is_nan());
        assert!(report.p95_latency_s.is_nan());
        assert!(report.p99_latency_s.is_nan());
        assert!(
            report.max_latency_s.is_nan(),
            "max of nothing is NaN, not a zero-latency task"
        );
        assert_eq!(report.makespan_s, 0.0);
    }
}
