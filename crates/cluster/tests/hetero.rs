//! Heterogeneous-fleet contracts: the per-node spec path must be a
//! strict generalization of the clone-farm it replaced.
//!
//! Three invariants pin the refactor:
//!
//! * a homogeneous [`NodeSpec`] fleet (unit weights, one machine
//!   config) is **byte-for-byte identical** to the pre-refactor
//!   single-`machine` clone path — including under node crashes, where
//!   the weighted supply re-cut must reproduce the legacy scalar
//!   arithmetic exactly;
//! * cost-aware placement is deterministic, honours task core-width
//!   affinity, and stays digest-identical between the lockstep oracle
//!   and the event-driven core — with competitive duplication and
//!   loser cancellation in the mix;
//! * the heterogeneous report itself is reproducible run to run.

use sprint_archsim::config::MachineConfig;
use sprint_cluster::prelude::*;
use sprint_core::config::SprintConfig;
use sprint_core::fault::{FaultEvent, FaultKind, FaultPlan, FaultResponse};
use sprint_thermal::grid::GridThermalParams;
use sprint_workloads::suite::{InputSize, WorkloadKind};

fn base_builder() -> ClusterBuilder {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 8.0;
    ClusterBuilder::new(GridThermalParams::rack(2, 2).time_scaled(3000.0))
        .policy(ClusterPolicy::greedy_default())
        .rack_supply(RackSupplyParams::rack(4).time_scaled(3000.0))
        .config(cfg)
        .tasks(ClusterTask::arrivals(
            WorkloadKind::Sobel,
            InputSize::A,
            16,
            6,
            0.0,
            60e-6,
        ))
        .max_time_s(0.01)
}

/// A crash plan that quarantines one busy node — exercising the
/// weighted supply's decommission re-cut on both build paths.
fn crash_plan() -> FaultPlan {
    FaultPlan::new(vec![FaultEvent {
        window: 10,
        node: 2,
        kind: FaultKind::NodeCrash,
    }])
    .with_retries(3, 16)
    .with_response(FaultResponse::Aware)
}

/// The tentpole's hard invariant: a fleet of `NodeSpec::standard`
/// nodes reproduces the clone path byte for byte — same floorplan (a
/// 1.0 footprint factor never touches a rect), same nameplate cuts
/// (unit weights are the exact legacy `cap / alive` arithmetic), same
/// machines — so the report digests match exactly, crashes included.
#[test]
fn homogeneous_node_specs_are_byte_identical_to_the_clone_path() {
    let clone_path = {
        let mut s = base_builder()
            .machine(MachineConfig::hpca())
            .fault_plan(crash_plan())
            .build();
        s.run_to_completion();
        s.report()
    };
    let spec_path = {
        let mut s = base_builder()
            .node_specs((0..4).map(|_| NodeSpec::standard(MachineConfig::hpca())))
            .fault_plan(crash_plan())
            .build();
        s.run_to_completion();
        s.report()
    };
    assert_eq!(
        clone_path.digest(),
        spec_path.digest(),
        "a homogeneous NodeSpec fleet diverged from the clone path: \
         makespan {} vs {}, peak {} vs {}",
        clone_path.makespan_s,
        spec_path.makespan_s,
        clone_path.peak_junction_c,
        spec_path.peak_junction_c,
    );
    assert!(spec_path.node_crashes > 0, "the crash plan must bite");
}

/// A mixed big/little rack: two 16-core nodes with heavier nameplate
/// and thermal footprints, two 8-core nodes with lighter ones.
fn hetero_specs() -> Vec<NodeSpec> {
    let big = MachineConfig::hpca();
    let little = MachineConfig::hpca().with_cores(8);
    vec![
        NodeSpec::standard(big.clone())
            .with_share_weight(1.5)
            .with_thermal_weight(1.25),
        NodeSpec::standard(little.clone())
            .with_share_weight(0.75)
            .with_thermal_weight(0.8),
        NodeSpec::standard(big)
            .with_share_weight(1.5)
            .with_thermal_weight(1.25),
        NodeSpec::standard(little)
            .with_share_weight(0.75)
            .with_thermal_weight(0.8),
    ]
}

fn hetero_session() -> ClusterSession {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 8.0;
    let mut tasks = ClusterTask::arrivals(WorkloadKind::Sobel, InputSize::A, 16, 8, 0.0, 60e-6);
    // Alternate wide-affinity and unconstrained classes so placement
    // has real decisions to make.
    for (i, t) in tasks.iter_mut().enumerate() {
        if i % 2 == 0 {
            *t = t.with_min_cores(16);
        }
    }
    ClusterBuilder::new(GridThermalParams::rack(2, 2).time_scaled(3000.0))
        .policy(ClusterPolicy::CompetitiveDuplicate {
            admit_headroom_k: 10.0,
            copies: 2,
            cancel_losers: true,
        })
        .rack_supply(RackSupplyParams::rack(4).time_scaled(3000.0))
        .config(cfg)
        .node_specs(hetero_specs())
        .placement(Placement::CheapestHeadroom)
        .tasks(tasks)
        .max_time_s(0.01)
        .build()
}

/// Cost-aware placement is a pure function of the rack state: the
/// same heterogeneous configuration reproduces its report digest run
/// to run.
#[test]
fn cheapest_headroom_placement_is_deterministic() {
    let digest = |mut s: ClusterSession| {
        s.run_to_completion();
        s.report().digest()
    };
    let a = digest(hetero_session());
    let b = digest(hetero_session());
    assert_eq!(a, b, "heterogeneous placement is not deterministic");
}

/// The golden-oracle invariant survives the full heterogeneous stack:
/// per-node specs, cost-aware placement, competitive duplication and
/// same-window loser cancellation all running, the event core's report
/// is digest-identical to the lockstep stepper's.
#[test]
fn hetero_event_core_matches_lockstep() {
    let mut lockstep = hetero_session();
    lockstep.run_to_completion();
    let oracle = lockstep.report();
    assert!(
        oracle.cancelled_copies > 0,
        "the cancellation path never fired on this fixture"
    );

    let mut event = EventDrivenCluster::new(hetero_session());
    event.run_to_completion();
    assert_eq!(
        oracle.digest(),
        event.report().digest(),
        "event core diverged from lockstep on the heterogeneous rack"
    );
}

/// Core-width affinity steers placement: with a big and a little node
/// both idle and equally cool, a `min_cores(16)` task lands on the
/// 16-core node under `CheapestHeadroom`, not on the lower-indexed
/// 8-core one the legacy order would pick.
#[test]
fn min_cores_affinity_prefers_the_wide_node() {
    let build = |placement: Placement| {
        let little = MachineConfig::hpca().with_cores(8);
        let big = MachineConfig::hpca();
        ClusterBuilder::new(GridThermalParams::rack(2, 1).time_scaled(3000.0))
            .policy(ClusterPolicy::greedy_default())
            .node_specs([NodeSpec::standard(little), NodeSpec::standard(big)])
            .placement(placement)
            .tasks(vec![ClusterTask::new(
                WorkloadKind::Sobel,
                InputSize::A,
                16,
                0.0,
            )
            .with_min_cores(16)])
            .max_time_s(0.01)
            .build()
    };
    let mut aware = build(Placement::CheapestHeadroom);
    assert_eq!(aware.run_to_completion(), ClusterOutcome::Drained);
    let report = aware.report();
    assert_eq!(
        report.outcomes[0].node, 1,
        "the wide-affinity task must land on the 16-core node"
    );

    let mut legacy = build(Placement::PolicyDefault);
    assert_eq!(legacy.run_to_completion(), ClusterOutcome::Drained);
    assert_eq!(
        legacy.report().outcomes[0].node,
        0,
        "the legacy order ignores affinity (this is what CheapestHeadroom fixes)"
    );
}
