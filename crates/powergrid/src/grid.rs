//! The sprint-enabled power distribution network of Figure 5.
//!
//! The model spans the supply regulator, board, package and on-chip
//! interconnect. Power and ground rails are modelled separately with series
//! R+L segments per level; decoupling capacitance (with ESR) sits at the
//! board and package interfaces and per core on chip. Power-gated cores are
//! modelled as current sources hanging between their local power and ground
//! grid taps, arranged along an on-chip ladder.
//!
//! Component values follow the annotations of Figure 5, tuned so the
//! paper's three headline observations reproduce: an abrupt 16-core
//! activation bounces the supply below the 2% tolerance (to ≈ 1.171 V) and
//! rings for ≈ 2.5 µs; a 1.28 µs linear ramp still violates tolerance; a
//! 128 µs ramp stays within tolerance and settles ≈ 10 mV below nominal due
//! to resistive drop.

use serde::{Deserialize, Serialize};

use crate::netlist::{Circuit, CurrentSourceId, Node};

/// One series rail segment: resistance plus inductance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RailSegment {
    /// Series resistance, ohms.
    pub ohms: f64,
    /// Series inductance, henries.
    pub henries: f64,
}

/// Decoupling capacitor parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Decap {
    /// Capacitance, farads.
    pub farads: f64,
    /// Equivalent series resistance, ohms.
    pub esr_ohms: f64,
}

/// Parameters of the sprint PDN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdnParams {
    /// Number of cores (current-source loads) on the chip grid.
    pub cores: usize,
    /// Nominal regulator voltage, volts (1.2 V in the paper).
    pub nominal_v: f64,
    /// Regulator output impedance per rail.
    pub regulator: RailSegment,
    /// Board trace impedance per rail.
    pub board: RailSegment,
    /// Package impedance per rail.
    pub package: RailSegment,
    /// On-chip grid segment between adjacent core taps, per rail.
    pub grid_segment: RailSegment,
    /// Bulk decap at the regulator/board interface.
    pub board_decap: Decap,
    /// Decap at the package interface.
    pub package_decap: Decap,
    /// Per-core on-chip decap.
    pub core_decap: Decap,
    /// Average current drawn by one active core, amps (0.5 A in Figure 5).
    pub core_current_a: f64,
}

impl PdnParams {
    /// The Figure 5 configuration with 16 cores.
    pub fn hpca() -> Self {
        Self {
            cores: 16,
            nominal_v: 1.2,
            regulator: RailSegment {
                ohms: 50e-6,
                henries: 0.05e-9,
            },
            board: RailSegment {
                ohms: 0.25e-3,
                henries: 2.5e-9,
            },
            package: RailSegment {
                ohms: 0.35e-3,
                henries: 0.25e-9,
            },
            grid_segment: RailSegment {
                ohms: 0.02e-3,
                henries: 8e-15,
            },
            board_decap: Decap {
                farads: 1e-3,
                esr_ohms: 1e-3,
            },
            package_decap: Decap {
                farads: 200e-6,
                esr_ohms: 2.5e-3,
            },
            core_decap: Decap {
                farads: 2.5e-6,
                esr_ohms: 10e-3,
            },
            core_current_a: 0.5,
        }
    }

    /// Same impedances with a different core count.
    pub fn with_cores(mut self, cores: usize) -> Self {
        assert!(cores > 0, "at least one core required");
        self.cores = cores;
        self
    }

    /// Total round-trip (power + ground) series resistance from regulator
    /// to the chip grid entry, ohms — sets the steady-state IR droop.
    pub fn round_trip_resistance_ohms(&self) -> f64 {
        2.0 * (self.regulator.ohms + self.board.ohms + self.package.ohms)
    }

    /// Expected steady-state droop at the worst (ladder-end) core with all
    /// cores active, volts: shared-path IR drop plus the accumulated drop
    /// along the on-chip ladder, on both rails.
    pub fn expected_ir_droop_v(&self) -> f64 {
        let shared = self.cores as f64 * self.core_current_a * self.round_trip_resistance_ohms();
        // Segment j (1-indexed from the package) carries (n - j + 1) cores'
        // current; the far core accumulates sum_{k=1..n} k = n(n+1)/2.
        let n = self.cores as f64;
        let ladder = 2.0 * self.grid_segment.ohms * self.core_current_a * n * (n + 1.0) / 2.0;
        shared + ladder
    }

    /// Builds the netlist.
    pub fn build(&self) -> SprintPdn {
        let mut ckt = Circuit::new();
        let gnd = Node::GROUND;

        // Regulator: ideal source between the regulator-output power node
        // and the ground reference.
        let reg_p = ckt.node();
        let source = ckt.vsource(reg_p, gnd, self.nominal_v);

        // Power rail chain: regulator -> board -> package -> chip entry.
        let mut chain_p = Vec::new();
        let mut chain_g = Vec::new();
        let mut prev_p = reg_p;
        let mut prev_g = gnd;
        for seg in [&self.regulator, &self.board, &self.package] {
            let np = ckt.node();
            ckt.resistor(prev_p, np, seg.ohms / 2.0);
            let np2 = ckt.node();
            ckt.inductor(np, np2, seg.henries);
            let np3 = ckt.node();
            ckt.resistor(np2, np3, seg.ohms / 2.0);
            // Ground rail mirrors the power rail.
            let ng = ckt.node();
            ckt.resistor(prev_g, ng, seg.ohms / 2.0);
            let ng2 = ckt.node();
            ckt.inductor(ng, ng2, seg.henries);
            let ng3 = ckt.node();
            ckt.resistor(ng2, ng3, seg.ohms / 2.0);
            chain_p.push(np3);
            chain_g.push(ng3);
            prev_p = np3;
            prev_g = ng3;
        }
        let board_p = chain_p[0];
        let board_g = chain_g[0];
        let pkg_p = chain_p[1];
        let pkg_g = chain_g[1];
        let chip_p = chain_p[2];
        let chip_g = chain_g[2];
        ckt.decap(
            board_p,
            board_g,
            self.board_decap.farads,
            self.board_decap.esr_ohms,
        );
        ckt.decap(
            pkg_p,
            pkg_g,
            self.package_decap.farads,
            self.package_decap.esr_ohms,
        );

        // On-chip ladder: core taps along a grid of series segments.
        let mut cores = Vec::with_capacity(self.cores);
        let mut taps = Vec::with_capacity(self.cores);
        let mut lp = chip_p;
        let mut lg = chip_g;
        for _ in 0..self.cores {
            let tp = ckt.node();
            ckt.resistor(lp, tp, self.grid_segment.ohms);
            // On-chip inductance is femtohenries — negligible against the
            // sub-nanosecond segments and omitted to keep the fast mode
            // resolvable; documented substitution.
            let tg = ckt.node();
            ckt.resistor(lg, tg, self.grid_segment.ohms);
            ckt.decap(tp, tg, self.core_decap.farads, self.core_decap.esr_ohms);
            let load = ckt.isource(tp, tg, 0.0);
            cores.push(load);
            taps.push((tp, tg));
            lp = tp;
            lg = tg;
        }

        SprintPdn {
            circuit: ckt,
            source,
            cores,
            taps,
            nominal_v: self.nominal_v,
            core_current_a: self.core_current_a,
        }
    }
}

impl Default for PdnParams {
    fn default() -> Self {
        Self::hpca()
    }
}

/// A built PDN netlist with handles to the per-core load sources.
#[derive(Debug, Clone)]
pub struct SprintPdn {
    circuit: Circuit,
    source: crate::netlist::VoltageSourceId,
    cores: Vec<CurrentSourceId>,
    taps: Vec<(Node, Node)>,
    nominal_v: f64,
    core_current_a: f64,
}

impl SprintPdn {
    /// The netlist (compile with [`crate::transient::TransientSim`]).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Per-core load source ids, in ladder order (closest to package first).
    pub fn cores(&self) -> &[CurrentSourceId] {
        &self.cores
    }

    /// Per-core (power, ground) tap nodes.
    pub fn taps(&self) -> &[(Node, Node)] {
        &self.taps
    }

    /// The regulator source id.
    pub fn source(&self) -> crate::netlist::VoltageSourceId {
        self.source
    }

    /// Nominal supply voltage.
    pub fn nominal_v(&self) -> f64 {
        self.nominal_v
    }

    /// Average per-core current when active, amps.
    pub fn core_current_a(&self) -> f64 {
        self.core_current_a
    }

    /// Differential supply voltage seen by core `i` in a running sim.
    pub fn core_supply_v(&self, sim: &crate::transient::TransientSim, i: usize) -> f64 {
        let (p, g) = self.taps[i];
        sim.voltage_between(p, g)
    }

    /// Worst (lowest) differential supply across all cores.
    pub fn min_core_supply_v(&self, sim: &crate::transient::TransientSim) -> f64 {
        self.taps
            .iter()
            .map(|&(p, g)| sim.voltage_between(p, g))
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::{Integration, TransientSim};

    #[test]
    fn dc_rails_at_nominal_when_idle() {
        let pdn = PdnParams::hpca().with_cores(4).build();
        let sim = TransientSim::new(pdn.circuit(), 1e-9, Integration::Trapezoidal).unwrap();
        for i in 0..4 {
            let v = pdn.core_supply_v(&sim, i);
            assert!((v - 1.2).abs() < 1e-6, "core {i} at {v}");
        }
    }

    #[test]
    fn steady_droop_matches_ir_estimate() {
        let params = PdnParams::hpca().with_cores(4);
        let pdn = params.build();
        let mut sim = TransientSim::new(pdn.circuit(), 2e-9, Integration::BackwardEuler).unwrap();
        for &c in pdn.cores() {
            sim.set_current(c, params.core_current_a);
        }
        // Run to electrical steady state (ms-scale modes need many steps;
        // backward Euler damps the slow board resonance quickly enough).
        sim.run(200_000);
        let v = pdn.core_supply_v(&sim, 0);
        let droop = 1.2 - v;
        let est = params.expected_ir_droop_v();
        assert!(
            (droop - est).abs() < 0.6e-3 + 0.5 * est,
            "droop {:.2} mV vs IR estimate {:.2} mV",
            droop * 1e3,
            est * 1e3
        );
        assert!(droop > 0.0, "active cores must droop the rail");
    }

    #[test]
    fn sixteen_core_ir_droop_near_10mv() {
        // The paper reports the 128 µs ramp settling ≈ 10 mV below nominal.
        let params = PdnParams::hpca();
        let est = params.expected_ir_droop_v();
        assert!(
            (8e-3..14e-3).contains(&est),
            "IR droop estimate {:.1} mV should be ≈ 10 mV",
            est * 1e3
        );
    }

    #[test]
    fn far_core_sees_lower_voltage_than_near_core() {
        let params = PdnParams::hpca().with_cores(8);
        let pdn = params.build();
        let mut sim = TransientSim::new(pdn.circuit(), 2e-9, Integration::BackwardEuler).unwrap();
        for &c in pdn.cores() {
            sim.set_current(c, params.core_current_a);
        }
        sim.run(100_000);
        let near = pdn.core_supply_v(&sim, 0);
        let far = pdn.core_supply_v(&sim, 7);
        assert!(
            far < near,
            "ladder end ({far}) must droop below entry ({near})"
        );
    }
}
