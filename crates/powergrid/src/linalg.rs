//! Minimal dense linear algebra: LU factorization with partial pivoting.
//!
//! The MNA matrices produced by the transient simulator are small (tens of
//! unknowns) and constant between time steps for a fixed step size, so a
//! single factorization amortizes over the whole transient and each step is
//! one forward/backward substitution.

/// A dense row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n x n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Reads entry `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.n + col]
    }

    /// Writes entry `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] = value;
    }

    /// Adds `value` to entry `(row, col)` — the MNA "stamp" operation.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] += value;
    }
}

/// LU factorization (with partial pivoting) of a [`Matrix`].
#[derive(Debug, Clone)]
pub struct LuFactor {
    n: usize,
    lu: Vec<f64>,
    pivots: Vec<usize>,
}

/// Error returned when a matrix is singular to working precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrix;

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular to working precision")
    }
}

impl std::error::Error for SingularMatrix {}

impl LuFactor {
    /// Factors `a` (consumed), returning the reusable factorization.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrix`] if a pivot is smaller than `1e-300`.
    pub fn factor(a: Matrix) -> Result<Self, SingularMatrix> {
        let n = a.n;
        let mut lu = a.data;
        let mut pivots = vec![0usize; n];
        for col in 0..n {
            // Find pivot.
            let mut pivot = col;
            let mut best = lu[col * n + col].abs();
            for row in (col + 1)..n {
                let v = lu[row * n + col].abs();
                if v > best {
                    best = v;
                    pivot = row;
                }
            }
            if best < 1e-300 {
                return Err(SingularMatrix);
            }
            pivots[col] = pivot;
            if pivot != col {
                for k in 0..n {
                    lu.swap(col * n + k, pivot * n + k);
                }
            }
            let d = lu[col * n + col];
            for row in (col + 1)..n {
                let factor = lu[row * n + col] / d;
                lu[row * n + col] = factor;
                if factor != 0.0 {
                    for k in (col + 1)..n {
                        lu[row * n + k] -= factor * lu[col * n + k];
                    }
                }
            }
        }
        Ok(Self { n, lu, pivots })
    }

    /// Solves `A x = b`, overwriting `b` with the solution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    // Triangular-solve loops index both `lu` and `b` by row arithmetic;
    // the explicit indices read closer to the textbook algorithm.
    #[allow(clippy::needless_range_loop)]
    pub fn solve_in_place(&self, b: &mut [f64]) {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let n = self.n;
        // Apply row swaps.
        for col in 0..n {
            let p = self.pivots[col];
            if p != col {
                b.swap(col, p);
            }
            // Forward elimination for this column.
            let bc = b[col];
            if bc != 0.0 {
                for row in (col + 1)..n {
                    b[row] -= self.lu[row * n + col] * bc;
                }
            }
        }
        // Back substitution.
        for row in (0..n).rev() {
            let mut acc = b[row];
            for k in (row + 1)..n {
                acc -= self.lu[row * n + k] * b[k];
            }
            b[row] = acc / self.lu[row * n + row];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(a: Matrix, mut b: Vec<f64>) -> Vec<f64> {
        let f = LuFactor::factor(a).unwrap();
        f.solve_in_place(&mut b);
        b
    }

    #[test]
    fn identity_solve() {
        let mut a = Matrix::zeros(3);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        let x = solve(a, vec![3.0, -1.0, 2.5]);
        assert_eq!(x, vec![3.0, -1.0, 2.5]);
    }

    #[test]
    fn known_3x3_system() {
        // A = [[2,1,0],[1,3,1],[0,1,4]], x = [1,2,3] => b = [4, 10, 14].
        let mut a = Matrix::zeros(3);
        let vals = [[2.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 4.0]];
        for (i, row) in vals.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                a.set(i, j, *v);
            }
        }
        let x = solve(a, vec![4.0, 10.0, 14.0]);
        for (got, want) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [[0,1],[1,0]] x = [5, 7] => x = [7, 5].
        let mut a = Matrix::zeros(2);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        let x = solve(a, vec![5.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::zeros(2);
        assert_eq!(LuFactor::factor(a).unwrap_err(), SingularMatrix);
    }

    #[test]
    fn factorization_is_reusable() {
        let mut a = Matrix::zeros(2);
        a.set(0, 0, 2.0);
        a.set(1, 1, 4.0);
        let f = LuFactor::factor(a).unwrap();
        let mut b1 = vec![2.0, 4.0];
        let mut b2 = vec![6.0, 8.0];
        f.solve_in_place(&mut b1);
        f.solve_in_place(&mut b2);
        assert_eq!(b1, vec![1.0, 1.0]);
        assert_eq!(b2, vec![3.0, 2.0]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn random_roundtrip() {
        // Deterministic pseudo-random matrix; verify A * x ≈ b.
        let n = 8;
        let mut a = Matrix::zeros(n);
        let mut seed = 0x12345678u64;
        let mut rand = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, rand() + if i == j { 4.0 } else { 0.0 });
            }
        }
        let b: Vec<f64> = (0..n).map(|_| rand()).collect();
        let a2 = a.clone();
        let x = solve(a, b.clone());
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += a2.get(i, j) * x[j];
            }
            assert!((acc - b[i]).abs() < 1e-9, "row {i}: {acc} vs {}", b[i]);
        }
    }
}
