//! Camera-based visual search: the paper's motivating scenario.
//!
//! A user snaps a photo; the device sprints to run feature extraction so
//! the query leaves the phone in a fraction of a second, then cools down
//! before the next shot. The example also checks the electrical side: can
//! the hybrid battery + ultracapacitor supply feed the burst, and how long
//! must the user wait between shots?
//!
//! Run with: `cargo run --release --example camera_search`

use computational_sprinting::prelude::*;
use computational_sprinting::thermal::analysis::{cooldown_rule_of_thumb_s, simulate_cooldown};

fn extract_features(label: &str, config: SprintConfig) -> RunReport {
    let workload = build_workload(WorkloadKind::Feature, InputSize::C);
    let mut machine = Machine::new(MachineConfig::hpca());
    workload.setup(&mut machine, 16);
    let thermal = PhoneThermalParams::hpca().time_scaled(40.0).build();
    let report = SprintSystem::new(machine, thermal, config).run();
    println!(
        "  {label:<20} completes in {:>7.2} ms",
        report.completion_s * 1e3
    );
    report
}

fn main() {
    println!("camera-based search: SURF-style feature extraction on an HD frame");
    let baseline = extract_features("without sprinting:", SprintConfig::hpca_sustained());
    let sprint = extract_features("with 16-core sprint:", SprintConfig::hpca_parallel());
    println!(
        "  responsiveness gain: {:.1}x",
        sprint.speedup_over(baseline.completion_s)
    );

    // Electrical feasibility of the burst.
    println!();
    println!("power delivery during the sprint:");
    let mut supply = HybridSupply::phone();
    let sprint_power_w = 16.0;
    match supply.sprint(sprint_power_w, sprint.completion_s * 40.0) {
        Ok(()) => println!(
            "  hybrid Li-ion + ultracap serves {sprint_power_w:.0} W; {:.0} J of sprint capacity left",
            supply.sprint_capacity_j()
        ),
        Err(e) => println!("  supply failed: {e}"),
    }

    // Thermal recovery between shots (full-scale model, real seconds).
    println!();
    println!("cooldown before the next shot:");
    let mut phone = PhoneThermalParams::hpca().build();
    computational_sprinting::thermal::analysis::simulate_sprint(&mut phone, 16.0, 0.002, 5.0);
    let cd = simulate_cooldown(&mut phone, 0.0, 3.0, 0.02, 120.0);
    println!(
        "  measured: junction near ambient after {:.0} s (rule of thumb: {:.0} s)",
        cd.t_near_ambient_s.unwrap_or(f64::NAN),
        cooldown_rule_of_thumb_s(1.0, 16.0, 1.0),
    );
}
