//! Power-source modelling for computational sprinting (Section 6).
//!
//! A 16x sprint needs 16 W for up to a second — far beyond the ~2.7 A a
//! phone's Li-ion cell can safely discharge. This crate models the
//! candidate solutions the paper analyzes: high-discharge Li-polymer
//! batteries, ultracapacitors, hybrid battery+capacitor supplies with
//! inter-sprint recharge, and the package pin budget needed to deliver
//! 16 A peaks onto the die.
//!
//! # Quick start
//!
//! ```
//! use sprint_powersource::hybrid::HybridSupply;
//!
//! let mut supply = HybridSupply::phone();
//! supply.sprint(16.0, 1.0).expect("ultracap covers the 16 J sprint");
//! supply.recharge_between_sprints(24.0);
//! ```

#![warn(missing_docs)]

pub mod battery;
pub mod feasibility;
pub mod hybrid;
pub mod pins;
pub mod ultracap;

pub use battery::{Battery, SupplyError};
pub use feasibility::{evaluate_pins, evaluate_sources, SourceVerdict};
pub use hybrid::HybridSupply;
pub use pins::PackagePins;
pub use ultracap::Ultracapacitor;
