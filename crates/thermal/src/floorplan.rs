//! Die floorplans: core rectangles mapped onto a thermal grid.
//!
//! A [`Floorplan`] describes where on the die the heat sources sit: each
//! core is an axis-aligned rectangle in die coordinates. The grid backend
//! ([`crate::grid::GridThermal`]) rasterizes every core onto its cell
//! grid by area overlap, so per-core power lands in the right cells at
//! any resolution — the same scheme HotSpot uses for its grid mode.
//!
//! Coordinates are unitless: only ratios matter, because the grid model
//! takes its thermal resistances directly rather than deriving them from
//! geometry. The conventional choice is a unit die (`1.0 x 1.0`).

use serde::{Deserialize, Serialize};

/// An axis-aligned core rectangle in die coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreRect {
    /// Label used in traces and reports.
    pub label: String,
    /// Left edge.
    pub x: f64,
    /// Bottom edge.
    pub y: f64,
    /// Width.
    pub w: f64,
    /// Height.
    pub h: f64,
}

impl CoreRect {
    /// Area of the rectangle.
    pub fn area(&self) -> f64 {
        self.w * self.h
    }
}

/// A die outline plus the core rectangles that dissipate power on it.
///
/// # Examples
///
/// ```
/// use sprint_thermal::floorplan::Floorplan;
///
/// // The paper's 16-core chip as a 4x4 array over the die center.
/// let fp = Floorplan::regular_array(4, 4, 0.72, 0.8);
/// assert_eq!(fp.core_count(), 16);
/// // Every core's cell weights sum to one at any grid resolution.
/// let w: f64 = fp.cell_weights(5, 8, 8).iter().map(|&(_, w)| w).sum();
/// assert!((w - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    die_w: f64,
    die_h: f64,
    cores: Vec<CoreRect>,
}

impl Floorplan {
    /// Creates an empty floorplan for a `die_w x die_h` die.
    ///
    /// # Panics
    ///
    /// Panics on non-positive die dimensions.
    pub fn new(die_w: f64, die_h: f64) -> Self {
        assert!(
            die_w > 0.0 && die_h > 0.0 && die_w.is_finite() && die_h.is_finite(),
            "die dimensions must be positive"
        );
        Self {
            die_w,
            die_h,
            cores: Vec::new(),
        }
    }

    /// Adds a core rectangle (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is degenerate or extends beyond the die.
    pub fn with_core(mut self, label: impl Into<String>, x: f64, y: f64, w: f64, h: f64) -> Self {
        assert!(w > 0.0 && h > 0.0, "core must have positive area");
        assert!(
            x >= 0.0 && y >= 0.0 && x + w <= self.die_w + 1e-12 && y + h <= self.die_h + 1e-12,
            "core extends beyond the die"
        );
        self.cores.push(CoreRect {
            label: label.into(),
            x,
            y,
            w,
            h,
        });
        self
    }

    /// A `cols x rows` core array centered on a unit die: the array spans
    /// a `span x span` square in the middle (the rest is cache/uncore,
    /// which dissipates nothing here), and each core fills `core_fill` of
    /// its pitch in both dimensions. This is the shape that produces the
    /// classic center-hotter-than-edge gradient.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < span <= 1` and `0 < core_fill <= 1`.
    pub fn regular_array(cols: usize, rows: usize, span: f64, core_fill: f64) -> Self {
        assert!(cols >= 1 && rows >= 1, "need at least one core");
        assert!(span > 0.0 && span <= 1.0, "array span must be in (0, 1]");
        assert!(
            core_fill > 0.0 && core_fill <= 1.0,
            "core fill must be in (0, 1]"
        );
        let mut fp = Self::new(1.0, 1.0);
        let origin = (1.0 - span) / 2.0;
        let pitch_x = span / cols as f64;
        let pitch_y = span / rows as f64;
        let core_w = pitch_x * core_fill;
        let core_h = pitch_y * core_fill;
        for r in 0..rows {
            for c in 0..cols {
                let x = origin + c as f64 * pitch_x + (pitch_x - core_w) / 2.0;
                let y = origin + r as f64 * pitch_y + (pitch_y - core_h) / 2.0;
                fp = fp.with_core(format!("core{}", r * cols + c), x, y, core_w, core_h);
            }
        }
        fp
    }

    /// A single core covering the entire die — the uniform-power case
    /// whose grid solution must match the lumped analytic chain.
    pub fn full_die() -> Self {
        Self::new(1.0, 1.0).with_core("core0", 0.0, 0.0, 1.0, 1.0)
    }

    /// Die width.
    pub fn die_w(&self) -> f64 {
        self.die_w
    }

    /// Die height.
    pub fn die_h(&self) -> f64 {
        self.die_h
    }

    /// The core rectangles.
    pub fn cores(&self) -> &[CoreRect] {
        &self.cores
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Scales core `core`'s rectangle *area* by `area_factor` about its
    /// center (each dimension scales by `sqrt(area_factor)`), sliding
    /// the rectangle back inside the die if the growth would cross an
    /// edge. This is the heterogeneous-fleet hook: on a rack plane
    /// where each rectangle is one server's footprint, the rectangle
    /// area is exactly what sizes that node's nameplate thermal sprint
    /// budget, so a big node commissions a bigger rect. A factor of
    /// exactly 1.0 is a guaranteed no-op (not merely a numerical one),
    /// preserving byte-identity for homogeneous specs.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range core index, a non-finite or
    /// non-positive factor, or a scaled rectangle larger than the die.
    pub fn scale_core(&mut self, core: usize, area_factor: f64) {
        assert!(
            area_factor.is_finite() && area_factor > 0.0,
            "area factor must be finite and positive"
        );
        if area_factor == 1.0 {
            return;
        }
        let (die_w, die_h) = (self.die_w, self.die_h);
        let rect = &mut self.cores[core];
        let s = area_factor.sqrt();
        let (w, h) = (rect.w * s, rect.h * s);
        assert!(
            w <= die_w + 1e-12 && h <= die_h + 1e-12,
            "scaled core exceeds the die"
        );
        let (cx, cy) = (rect.x + rect.w / 2.0, rect.y + rect.h / 2.0);
        rect.x = (cx - w / 2.0).clamp(0.0, (die_w - w).max(0.0));
        rect.y = (cy - h / 2.0).clamp(0.0, (die_h - h).max(0.0));
        rect.w = w;
        rect.h = h;
    }

    /// Rasterizes core `core` onto an `nx x ny` grid: returns
    /// `(cell_index, weight)` pairs where `cell_index = y * nx + x` and
    /// the weights (overlap area / core area) sum to one.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range core index or an empty grid.
    pub fn cell_weights(&self, core: usize, nx: usize, ny: usize) -> Vec<(usize, f64)> {
        assert!(nx >= 1 && ny >= 1, "grid must have at least one cell");
        let rect = &self.cores[core];
        let dx = self.die_w / nx as f64;
        let dy = self.die_h / ny as f64;
        let inv_area = 1.0 / rect.area();
        let x_lo = ((rect.x / dx).floor() as usize).min(nx - 1);
        let x_hi = (((rect.x + rect.w) / dx).ceil() as usize).min(nx);
        let y_lo = ((rect.y / dy).floor() as usize).min(ny - 1);
        let y_hi = (((rect.y + rect.h) / dy).ceil() as usize).min(ny);
        let mut out = Vec::new();
        for cy in y_lo..y_hi {
            let oy = overlap(
                rect.y,
                rect.y + rect.h,
                cy as f64 * dy,
                (cy + 1) as f64 * dy,
            );
            if oy <= 0.0 {
                continue;
            }
            for cx in x_lo..x_hi {
                let ox = overlap(
                    rect.x,
                    rect.x + rect.w,
                    cx as f64 * dx,
                    (cx + 1) as f64 * dx,
                );
                if ox <= 0.0 {
                    continue;
                }
                out.push((cy * nx + cx, ox * oy * inv_area));
            }
        }
        out
    }
}

/// Length of the overlap of `[a0, a1]` and `[b0, b1]`.
fn overlap(a0: f64, a1: f64, b0: f64, b1: f64) -> f64 {
    (a1.min(b1) - a0.max(b0)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_array_counts_and_bounds() {
        let fp = Floorplan::regular_array(4, 4, 0.7, 0.85);
        assert_eq!(fp.core_count(), 16);
        for c in fp.cores() {
            assert!(c.x >= 0.0 && c.y >= 0.0);
            assert!(c.x + c.w <= 1.0 + 1e-12 && c.y + c.h <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn weights_sum_to_one_at_any_resolution() {
        let fp = Floorplan::regular_array(4, 4, 0.72, 0.8);
        for core in 0..fp.core_count() {
            for (nx, ny) in [(1, 1), (3, 5), (8, 8), (17, 9)] {
                let sum: f64 = fp.cell_weights(core, nx, ny).iter().map(|&(_, w)| w).sum();
                assert!(
                    (sum - 1.0).abs() < 1e-9,
                    "core {core} on {nx}x{ny}: weights sum {sum}"
                );
            }
        }
    }

    #[test]
    fn full_die_core_covers_every_cell_equally() {
        let fp = Floorplan::full_die();
        let w = fp.cell_weights(0, 4, 4);
        assert_eq!(w.len(), 16);
        for &(_, weight) in &w {
            assert!((weight - 1.0 / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn off_center_core_hits_the_right_cells() {
        // A core in the lower-left quadrant only touches lower-left cells.
        let fp = Floorplan::new(1.0, 1.0).with_core("c", 0.0, 0.0, 0.4, 0.4);
        let cells = fp.cell_weights(0, 2, 2);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].0, 0);
    }

    #[test]
    #[should_panic(expected = "beyond the die")]
    fn core_outside_die_rejected() {
        let _ = Floorplan::new(1.0, 1.0).with_core("c", 0.8, 0.8, 0.5, 0.5);
    }

    #[test]
    fn scale_core_scales_area_about_center_and_stays_on_die() {
        let mut fp = Floorplan::regular_array(2, 2, 0.8, 0.8);
        let before = fp.cores()[1].clone();
        fp.scale_core(1, 2.0);
        let after = &fp.cores()[1];
        assert!((after.area() - 2.0 * before.area()).abs() < 1e-12);
        // Center preserved (the rect had room to grow in place).
        assert!((after.x + after.w / 2.0 - (before.x + before.w / 2.0)).abs() < 1e-12);
        assert!((after.y + after.h / 2.0 - (before.y + before.h / 2.0)).abs() < 1e-12);
        // Rasterization weights still sum to one.
        let sum: f64 = fp.cell_weights(1, 7, 5).iter().map(|&(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // A corner rect grown past the edge slides back inside.
        let mut corner = Floorplan::new(1.0, 1.0).with_core("c", 0.0, 0.0, 0.5, 0.5);
        corner.scale_core(0, 3.0);
        let c = &corner.cores()[0];
        assert!(c.x >= 0.0 && c.y >= 0.0);
        assert!(c.x + c.w <= 1.0 + 1e-12 && c.y + c.h <= 1.0 + 1e-12);
        // Factor 1.0 is a guaranteed no-op, bit for bit.
        let mut same = Floorplan::regular_array(2, 2, 0.8, 0.8);
        same.scale_core(3, 1.0);
        assert_eq!(same, Floorplan::regular_array(2, 2, 0.8, 0.8));
    }

    #[test]
    #[should_panic(expected = "exceeds the die")]
    fn scale_core_rejects_over_die_growth() {
        let mut fp = Floorplan::new(1.0, 1.0).with_core("c", 0.1, 0.1, 0.8, 0.8);
        fp.scale_core(0, 2.0);
    }
}
