//! `disparity` — stereo block-matching disparity, after SD-VBS.
//!
//! For each candidate disparity the kernel streams the left image and the
//! shifted right image, computes a windowed sum-of-absolute-differences
//! (SAD), and keeps the per-pixel winner. The images are stored as 32-bit
//! integers (as SD-VBS does) and every disparity pass re-streams them, so
//! the kernel is dominated by memory traffic — the paper finds `disparity`
//! limited by memory bandwidth and gaining from doubled channels.

use std::sync::Arc;

use sprint_archsim::isa::Op;
use sprint_archsim::machine::Machine;
use sprint_archsim::memmap::{AddressSpace, Region};
use sprint_archsim::program::{Inbox, Kernel, KernelStatus, ThreadId};

use crate::data::{stereo_pair, GrayImage};
use crate::emit;
use crate::partition::chunk_range;
use crate::suite::{InputSize, Workload};

/// Number of candidate disparities searched.
pub const DISPARITIES: usize = 8;
/// Half-width of the (horizontal) SAD window.
pub const WINDOW_HALF: usize = 2;

/// Computes the winning disparity per pixel with a sliding-window SAD.
pub fn disparity_native(left: &GrayImage, right: &GrayImage) -> Vec<u8> {
    assert_eq!(left.width, right.width);
    assert_eq!(left.height, right.height);
    let (w, h) = (left.width, left.height);
    let mut best_sad = vec![u32::MAX; w * h];
    let mut best_d = vec![0u8; w * h];
    let mut diff_row = vec![0u32; w];
    for d in 0..DISPARITIES {
        for y in 0..h {
            for (x, diff) in diff_row.iter_mut().enumerate() {
                let r = right.at_clamped(x as isize - d as isize, y as isize);
                *diff = (i32::from(left.at(x, y)) - i32::from(r)).unsigned_abs();
            }
            // Sliding horizontal window of width 2*WINDOW_HALF+1.
            let mut acc: u32 = (0..=WINDOW_HALF.min(w - 1)).map(|x| diff_row[x]).sum();
            for x in 0..w {
                let idx = y * w + x;
                if acc < best_sad[idx] {
                    best_sad[idx] = acc;
                    best_d[idx] = d as u8;
                }
                // Advance the window.
                let leaving = x as isize - WINDOW_HALF as isize;
                if leaving >= 0 {
                    acc -= diff_row[leaving as usize];
                }
                let entering = x + WINDOW_HALF + 1;
                if entering < w {
                    acc += diff_row[entering];
                }
            }
        }
    }
    best_d
}

struct DisparityData {
    width: usize,
    height: usize,
    left: Region,
    right: Region,
    map: Region,
}

/// The disparity workload.
pub struct DisparityWorkload {
    data: Arc<DisparityData>,
    map: Vec<u8>,
}

impl std::fmt::Debug for DisparityWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DisparityWorkload")
            .field("width", &self.data.width)
            .field("height", &self.data.height)
            .finish_non_exhaustive()
    }
}

impl DisparityWorkload {
    /// Builds the workload at a standard input size.
    pub fn new(size: InputSize) -> Self {
        let scale = (size.scale() as f64).sqrt();
        let w = (800.0 * scale) as usize;
        let h = (624.0 * scale) as usize;
        Self::with_dims(w, h, 0xD15_BA7)
    }

    /// Builds the workload for explicit dimensions.
    pub fn with_dims(width: usize, height: usize, seed: u64) -> Self {
        let (left, right) = stereo_pair(width, height, DISPARITIES * 2, seed);
        let map = disparity_native(&left, &right);
        let mut mem = AddressSpace::new();
        // SD-VBS stores images as 32-bit ints: 4 bytes per pixel of
        // streaming traffic per pass.
        let left_r = mem.alloc_bytes((width * height * 4) as u64);
        let right_r = mem.alloc_bytes((width * height * 4) as u64);
        let map_r = mem.alloc_bytes((width * height * 4) as u64);
        Self {
            data: Arc::new(DisparityData {
                width,
                height,
                left: left_r,
                right: right_r,
                map: map_r,
            }),
            map,
        }
    }

    /// The natively computed disparity map.
    pub fn map(&self) -> &[u8] {
        &self.map
    }
}

impl Workload for DisparityWorkload {
    fn name(&self) -> &'static str {
        "disparity"
    }

    fn setup(&self, machine: &mut Machine, threads: usize) {
        for t in 0..threads {
            machine.spawn(Box::new(DisparityKernel::new(
                self.data.clone(),
                t,
                threads,
            )));
        }
    }

    fn work_units(&self) -> u64 {
        (self.data.width * self.data.height * DISPARITIES) as u64
    }
}

struct DisparityKernel {
    data: Arc<DisparityData>,
    rows: std::ops::Range<usize>,
    d: usize,
    y: usize,
    finished: bool,
}

impl DisparityKernel {
    fn new(data: Arc<DisparityData>, tid: usize, threads: usize) -> Self {
        let rows = chunk_range(data.height, threads, tid);
        Self {
            y: rows.start,
            rows,
            data,
            d: 0,
            finished: false,
        }
    }
}

impl Kernel for DisparityKernel {
    fn step(&mut self, _tid: ThreadId, _inbox: &mut Inbox, out: &mut Vec<Op>) -> KernelStatus {
        if self.finished {
            return KernelStatus::Done;
        }
        if self.d >= DISPARITIES {
            out.push(Op::Barrier);
            self.finished = true;
            return KernelStatus::Done;
        }
        let d = &self.data;
        let w = d.width as u64;
        // One image row per step: stream left, shifted right, and the
        // running best-SAD/disparity map (read-modify-write).
        let y = self.y as u64;
        emit::load_span(out, d.left, y * w * 4, w * 4);
        let shift = (self.d as u64).min(w - 1);
        emit::load_span(out, d.right, (y * w) * 4, (w - shift) * 4);
        emit::load_span(out, d.map, y * w * 4, w * 4);
        emit::store_span(out, d.map, y * w * 4, w * 4);
        // Sliding-window SAD: ~4 integer ops plus compare/update per px.
        emit::element_mix(out, w, 0, 4, 2);
        self.y += 1;
        if self.y >= self.rows.end {
            self.y = self.rows.start;
            self.d += 1;
        }
        KernelStatus::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_archsim::config::MachineConfig;

    #[test]
    fn native_disparity_recovers_band_shift() {
        // The generated stereo pair shifts the middle band by a known
        // disparity; the matcher should recover it for most pixels there.
        let (l, r) = stereo_pair(192, 144, DISPARITIES * 2, 11);
        let map = disparity_native(&l, &r);
        // Middle band: band = 1 + 3y/h = 2 at y = h/2, d = 2*16/4 = 8 —
        // beyond our search range (8), so use the first band instead:
        // y < h/3 -> band 1 -> d = 4.
        let y = 20;
        let mut hits = 0;
        for x in 40..150 {
            if (i32::from(map[y * 192 + x]) - 4).abs() <= 1 {
                hits += 1;
            }
        }
        assert!(hits > 55, "expected band disparity ≈ 4, hits = {hits}/110");
    }

    #[test]
    fn disparity_map_values_in_range() {
        let w = DisparityWorkload::with_dims(96, 64, 2);
        assert!(w.map().iter().all(|&d| (d as usize) < DISPARITIES));
    }

    #[test]
    fn workload_streams_expected_traffic() {
        let wl = DisparityWorkload::with_dims(128, 64, 2);
        let mut m = Machine::new(MachineConfig::hpca().with_cores(2));
        wl.setup(&mut m, 2);
        while !m.all_done() {
            m.run_window(1_000_000);
        }
        // Every pass re-reads rows: loads dominate.
        assert!(m.stats().loads > m.stats().stores);
        assert_eq!(m.stats().barrier_episodes, 1);
    }
}
