//! Deterministic synthetic input generation.
//!
//! The paper evaluates on camera images and sensor data we do not have;
//! these generators produce deterministic, seeded inputs with the
//! statistical structure the kernels care about: images with smooth
//! regions, edges and texture (so edge detectors, feature extractors and
//! segmenters have real work to do), stereo pairs with a known disparity
//! shift, and clustered point sets (so k-means converges in a
//! data-dependent number of iterations).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A grayscale 8-bit image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major pixel data.
    pub pixels: Vec<u8>,
}

impl GrayImage {
    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, x: usize, y: usize) -> u8 {
        self.pixels[y * self.width + x]
    }

    /// Clamped pixel access (edge pixels replicate outward).
    #[inline]
    pub fn at_clamped(&self, x: isize, y: isize) -> u8 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.at(x, y)
    }

    /// Total pixel count.
    pub fn len(&self) -> usize {
        self.pixels.len()
    }

    /// True for a zero-pixel image (never produced by the generators).
    pub fn is_empty(&self) -> bool {
        self.pixels.is_empty()
    }
}

/// Generates a textured scene: smooth gradients, rectangular objects with
/// sharp edges, and band-limited noise.
pub fn textured_image(width: usize, height: usize, seed: u64) -> GrayImage {
    assert!(width >= 8 && height >= 8, "image must be at least 8x8");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pixels = vec![0u8; width * height];
    // Background: two-axis gradient.
    for y in 0..height {
        for x in 0..width {
            let g = 60.0 + 80.0 * (x as f64 / width as f64) + 40.0 * (y as f64 / height as f64);
            pixels[y * width + x] = g as u8;
        }
    }
    // Objects: random rectangles with distinct intensities (sharp edges).
    let objects = 12 + (width * height / 20_000);
    for _ in 0..objects {
        let ow = rng.gen_range(width / 16..width / 4);
        let oh = rng.gen_range(height / 16..height / 4);
        let ox = rng.gen_range(0..width - ow);
        let oy = rng.gen_range(0..height - oh);
        let val: u8 = rng.gen_range(0..=255);
        for y in oy..oy + oh {
            for x in ox..ox + ow {
                pixels[y * width + x] = val;
            }
        }
    }
    // Texture: low-amplitude noise so flat regions are not exactly flat.
    for p in pixels.iter_mut() {
        let n: i16 = rng.gen_range(-6..=6);
        *p = (*p as i16 + n).clamp(0, 255) as u8;
    }
    GrayImage {
        width,
        height,
        pixels,
    }
}

/// Generates a stereo pair: the right image is the left image shifted by a
/// per-region disparity (nearer objects shift more), plus noise.
pub fn stereo_pair(
    width: usize,
    height: usize,
    max_disparity: usize,
    seed: u64,
) -> (GrayImage, GrayImage) {
    let left = textured_image(width, height, seed);
    let mut right = left.clone();
    // Three depth bands with increasing disparity.
    for y in 0..height {
        let band = 1 + (3 * y / height);
        let d = (band * max_disparity / 4).min(max_disparity - 1);
        for x in 0..width {
            right.pixels[y * width + x] = left.at_clamped(x as isize + d as isize, y as isize);
        }
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5113);
    for p in right.pixels.iter_mut() {
        let n: i16 = rng.gen_range(-3..=3);
        *p = (*p as i16 + n).clamp(0, 255) as u8;
    }
    (left, right)
}

/// Generates `n` points of dimension `dim` drawn from `clusters` Gaussian
/// blobs (so k-means has genuine cluster structure).
pub fn clustered_points(n: usize, dim: usize, clusters: usize, seed: u64) -> Vec<f32> {
    assert!(clusters > 0 && dim > 0 && n > 0, "degenerate point set");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<f32> = (0..clusters * dim)
        .map(|_| rng.gen_range(-50.0f32..50.0))
        .collect();
    let mut points = Vec::with_capacity(n * dim);
    for i in 0..n {
        let c = i % clusters;
        for d in 0..dim {
            let jitter: f32 = rng.gen_range(-4.0..4.0);
            points.push(centers[c * dim + d] + jitter);
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textured_image_is_deterministic() {
        let a = textured_image(64, 48, 7);
        let b = textured_image(64, 48, 7);
        assert_eq!(a, b);
        let c = textured_image(64, 48, 8);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn textured_image_has_edges() {
        let img = textured_image(128, 128, 1);
        // Count large horizontal gradients; a textured scene has plenty.
        let mut edges = 0;
        for y in 0..img.height {
            for x in 1..img.width {
                if (img.at(x, y) as i32 - img.at(x - 1, y) as i32).abs() > 30 {
                    edges += 1;
                }
            }
        }
        assert!(edges > 100, "expected edges, found {edges}");
    }

    #[test]
    fn stereo_pair_has_shifted_content() {
        let (l, r) = stereo_pair(128, 96, 16, 3);
        assert_eq!(l.width, r.width);
        // The pair must differ (shift) but be correlated (same scene).
        assert_ne!(l.pixels, r.pixels);
        let mut close = 0usize;
        let y = 48;
        let d = 8; // middle band disparity = 2*16/4 = 8
        for x in 0..l.width - d {
            if (r.at(x, y) as i32 - l.at(x + d, y) as i32).abs() < 16 {
                close += 1;
            }
        }
        assert!(
            close > (l.width - d) / 2,
            "right image should match left at the band disparity: {close}"
        );
    }

    #[test]
    fn clustered_points_have_structure() {
        let dim = 4;
        let pts = clustered_points(400, dim, 4, 11);
        assert_eq!(pts.len(), 400 * dim);
        // Points in the same cluster (stride 4 apart) are close.
        let d2 = |a: usize, b: usize| -> f32 {
            (0..dim)
                .map(|k| (pts[a * dim + k] - pts[b * dim + k]).powi(2))
                .sum()
        };
        let same = d2(0, 4);
        assert!(same < 500.0, "same-cluster distance {same}");
    }

    #[test]
    fn clamped_access_replicates_edges() {
        let img = textured_image(16, 16, 0);
        assert_eq!(img.at_clamped(-5, 0), img.at(0, 0));
        assert_eq!(img.at_clamped(20, 15), img.at(15, 15));
    }
}
