//! ADI solver validation: equivalence against the explicit reference on
//! sprint-and-rest cycles, unconditional stability at sub-steps far
//! beyond the explicit bound, exact conservation through melt, and the
//! sub-step time-accounting regression.

use sprint_thermal::grid::{GridSolver, GridThermal, GridThermalParams};

/// Drives both solvers through one sprint-and-rest cycle with the same
/// power schedule, sampling every `sample_dt` seconds, and returns the
/// largest junction-temperature disagreement seen, Kelvin.
fn max_junction_dev(
    params: GridThermalParams,
    sprint_w: f64,
    sprint_s: f64,
    rest_s: f64,
    sample_dt: f64,
) -> f64 {
    let mut explicit = params.clone().with_solver(GridSolver::Explicit).build();
    let mut adi = params.with_solver(GridSolver::Adi).build();
    let total = sprint_s + rest_s;
    let steps = (total / sample_dt).round() as usize;
    let mut worst = 0.0f64;
    for k in 0..steps {
        let t = k as f64 * sample_dt;
        let p = if t < sprint_s { sprint_w } else { 0.0 };
        explicit.set_chip_power_w(p);
        adi.set_chip_power_w(p);
        explicit.advance(sample_dt);
        adi.advance(sample_dt);
        worst = worst.max((explicit.junction_temp_c() - adi.junction_temp_c()).abs());
    }
    worst
}

#[test]
fn adi_matches_explicit_on_8x8_sprint_and_rest() {
    let dev = max_junction_dev(GridThermalParams::hpca_like(), 16.0, 0.4, 0.6, 0.01);
    assert!(
        dev < 0.1,
        "8x8 ADI junction must track explicit within 0.1 K, got {dev:.4} K"
    );
}

/// The fine-grid case the ADI solver exists for. The explicit reference
/// needs ~100x more sub-steps here, so the test only runs in release
/// builds (the perf-smoke CI job covers it on every push).
#[test]
#[cfg_attr(debug_assertions, ignore = "explicit 32x32 reference is release-only")]
fn adi_matches_explicit_on_32x32_sprint_and_rest() {
    let params = GridThermalParams::hpca_like().with_grid(32, 32);
    let dev = max_junction_dev(params, 16.0, 0.4, 0.6, 0.01);
    assert!(
        dev < 0.1,
        "32x32 ADI junction must track explicit within 0.1 K, got {dev:.4} K"
    );
}

/// A 1x1 grid is the lumped chain; the ADI z-sweep alone must integrate
/// it to the same trajectory as the explicit scheme. The fallback is
/// pinned off: on the lumped chain the explicit bound is just as cheap,
/// so the default would (correctly) route every window to explicit and
/// leave the ADI z-sweep untested.
#[test]
fn adi_matches_explicit_on_the_lumped_equivalent_chain() {
    use sprint_thermal::phone::PhoneThermalParams;
    let mut phone = PhoneThermalParams::hpca();
    phone.board_path = None;
    let params = GridThermalParams::phone_equivalent(&phone).with_adi_fallback(false);
    let dev = max_junction_dev(params, 16.0, 0.8, 1.2, 0.02);
    assert!(
        dev < 0.1,
        "1x1 ADI must track the explicit chain within 0.1 K, got {dev:.4} K"
    );
}

/// Pins the explicit-fallback crossover ([`ADI_FALLBACK_COST_RATIO`]):
/// an ADI `advance` routes the window to whichever scheme is cheaper,
/// so coarse grids (whose explicit bound is already slack) never pay
/// the Thomas sweeps' fixed cost — the 8x8 regression case from
/// BENCH_grid.json — while fine grids keep the implicit win.
#[test]
fn adi_fallback_crossover_is_pinned() {
    use sprint_thermal::grid::ADI_FALLBACK_COST_RATIO;
    use sprint_thermal::phone::PhoneThermalParams;
    assert_eq!(ADI_FALLBACK_COST_RATIO, 5.0);

    // Lumped 1x1 chain: the bounds coincide (ratio ~1), ADI buys
    // nothing — every window falls back.
    let mut phone = PhoneThermalParams::hpca();
    phone.board_path = None;
    let lumped = GridThermalParams::phone_equivalent(&phone)
        .with_solver(GridSolver::Adi)
        .build();
    assert_eq!(lumped.effective_solver(0.02), GridSolver::Explicit);
    assert!(lumped.sub_step_s() >= lumped.adi_sub_step_s() / ADI_FALLBACK_COST_RATIO);

    // ...unless the fallback is disabled outright.
    let pinned = GridThermalParams::phone_equivalent(&phone)
        .with_solver(GridSolver::Adi)
        .with_adi_fallback(false)
        .build();
    assert_eq!(pinned.effective_solver(0.02), GridSolver::Adi);

    // 8x8 and up: the explicit bound shrinks with resolution, the ADI
    // bound does not, so real grids clear the ratio and stay implicit.
    for (nx, ny) in [(8, 8), (16, 16), (32, 32)] {
        let g = GridThermalParams::hpca_like()
            .with_grid(nx, ny)
            .with_solver(GridSolver::Adi)
            .build();
        assert_eq!(
            g.effective_solver(0.005),
            GridSolver::Adi,
            "{nx}x{ny} must stay ADI"
        );
        assert!(
            g.sub_step_s() < g.adi_sub_step_s() / ADI_FALLBACK_COST_RATIO,
            "{nx}x{ny} explicit bound must be >{ADI_FALLBACK_COST_RATIO}x tighter"
        );
    }

    // An explicit-solver grid is never rerouted, and a zero-length
    // window never falls back (there is nothing to integrate).
    let explicit = GridThermalParams::hpca_like().build();
    assert_eq!(explicit.effective_solver(0.005), GridSolver::Explicit);
    assert_eq!(pinned.effective_solver(0.0), GridSolver::Adi);
}

/// The whole point of the implicit sweeps: sub-steps 100x beyond the
/// explicit stability bound must stay stable — finite, bounded by the
/// physics, and relaxing once power is cut — where forward Euler would
/// blow up within a handful of steps.
#[test]
fn adi_is_stable_at_100x_the_explicit_sub_step() {
    let params = GridThermalParams::hpca_like().with_grid(32, 32);
    let explicit_bound = params.clone().build().sub_step_s();
    let mut g = params.with_solver(GridSolver::Adi).build();
    // One hundred explicit sub-steps per advance — far beyond anywhere
    // forward Euler could survive. The ADI accuracy bound itself must
    // sit way above the explicit stability bound at this resolution
    // (that decoupling is the point of the solver).
    let dt = 100.0 * explicit_bound;
    assert!(
        g.adi_sub_step_s() > 50.0 * explicit_bound,
        "32x32 ADI bound must dwarf the explicit bound ({:.3e} vs {:.3e})",
        g.adi_sub_step_s(),
        explicit_bound
    );
    g.set_chip_power_w(16.0);
    let ceiling = g.ambient_c() + 16.0 * g.params().series_resistance_k_per_w() + 1.0;
    for _ in 0..400 {
        g.advance(dt);
        let t = g.junction_temp_c();
        assert!(
            t.is_finite() && t < ceiling,
            "implicit step diverged: junction {t} C"
        );
    }
    let hot = g.junction_temp_c();
    assert!(hot > 45.0, "the sprint must actually heat the die: {hot} C");
    g.set_chip_power_w(0.0);
    let mut prev = g.junction_temp_c();
    for _ in 0..200 {
        g.advance(dt);
        let now = g.junction_temp_c();
        assert!(
            now <= prev + 1e-9,
            "zero-power relaxation must not oscillate: {now} after {prev}"
        );
        prev = now;
    }
}

/// Conservation through a full melt-and-refreeze: the flux-form
/// enthalpy correction keeps injected == stored + absorbed to roundoff,
/// exactly like the explicit solver.
#[test]
fn adi_conserves_energy_through_melt_and_refreeze() {
    let mut g = GridThermalParams::hpca_like()
        .with_solver(GridSolver::Adi)
        .build();
    let e0 = g.total_stored_enthalpy_j();
    g.set_chip_power_w(18.0);
    g.advance(0.9);
    assert!(g.melt_fraction() > 0.05, "the sprint must start the melt");
    g.set_chip_power_w(0.0);
    g.advance(4.0);
    let injected = 18.0 * 0.9;
    let stored = g.total_stored_enthalpy_j() - e0;
    let absorbed = g.boundary_absorbed_j();
    assert!(
        (stored + absorbed - injected).abs() < 1e-8 * injected,
        "stored {stored} + absorbed {absorbed} != injected {injected}"
    );
}

/// Regression for the `time_s` drift: the clock must equal the sum of
/// the sub-steps actually integrated, not the sum of the requested
/// `dt_s` values (the two differ in the last bits when `dt / steps`
/// rounds, and the old accounting let them diverge over long runs).
#[test]
fn advance_accounts_time_from_actual_sub_steps() {
    let mut g = GridThermalParams::hpca_like().build();
    let bound = g.sub_step_s();
    let mut expected = 0.0f64;
    // Awkward dt values guarantee dt / steps is inexact.
    for k in 1..200u64 {
        let dt = 0.013 + 1e-4 * (k % 7) as f64;
        let steps = (dt / bound).ceil().max(1.0) as u64;
        let sub = dt / steps as f64;
        for _ in 0..steps {
            expected += sub;
        }
        g.advance(dt);
    }
    assert_eq!(
        g.time_s(),
        expected,
        "time_s must accumulate from the integrated sub-steps"
    );
    // And it cannot stray measurably from the naive sum either.
    let naive: f64 = (1..200u64).map(|k| 0.013 + 1e-4 * (k % 7) as f64).sum();
    assert!((g.time_s() - naive).abs() < 1e-9);
}

/// ADI honours the shared invariants the explicit property tests pin:
/// zero-power relaxation never overshoots ambient anywhere on the grid.
#[test]
fn adi_relaxation_stays_monotone_through_the_refreeze_plateau() {
    let mut g = GridThermalParams::hpca_like()
        .with_grid(16, 16)
        .with_solver(GridSolver::Adi)
        .build();
    g.set_chip_power_w(16.0);
    g.advance(0.6);
    g.set_chip_power_w(0.0);
    let deviation = |g: &GridThermal| {
        let mut worst = 0.0f64;
        for layer in 0..g.layer_count() {
            for y in 0..g.params().ny {
                for x in 0..g.params().nx {
                    worst = worst.max((g.cell_temp_c(layer, x, y) - 25.0).abs());
                }
            }
        }
        worst
    };
    let mut prev = deviation(&g);
    for _ in 0..30 {
        g.advance(0.25);
        let now = deviation(&g);
        assert!(
            now <= prev + 1e-9,
            "deviation must not grow with zero power: {now} after {prev}"
        );
        prev = now;
    }
}
