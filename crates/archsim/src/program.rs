//! The kernel (program) interface: how workloads feed operations to cores.
//!
//! Workloads are implemented as resumable state machines. Each simulated
//! thread owns a [`Kernel`]; whenever the thread's operation buffer runs
//! dry, the machine calls [`Kernel::step`] to refill it. Kernels perform
//! their *real* computation natively (on data they own) while emitting the
//! corresponding operation/address trace — data-dependent control flow
//! (e.g. k-means convergence) therefore shapes the trace exactly as it
//! would on real hardware, while simulated memory carries no contents.

use crate::isa::Op;

/// Identifier of a simulated software thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub usize);

impl ThreadId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Status returned by a kernel step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelStatus {
    /// More work remains; call `step` again when the buffer drains.
    Running,
    /// The thread has finished (any ops emitted this step still execute).
    Done,
}

/// Reply to an [`Op::FetchTask`] request, delivered before the next step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskFetch {
    /// Queue the fetch targeted.
    pub queue: u32,
    /// The popped task index, or `None` when the queue was empty.
    pub task: Option<u32>,
}

/// Mailbox carrying replies from the machine to a kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct Inbox {
    /// Reply to the most recent task fetch, if one completed.
    pub task: Option<TaskFetch>,
}

/// A resumable, trace-emitting workload thread.
///
/// # Examples
///
/// A kernel that computes, touches memory, and finishes:
///
/// ```
/// use sprint_archsim::isa::{Op, OpClass};
/// use sprint_archsim::program::{Inbox, Kernel, KernelStatus, ThreadId};
///
/// struct Fill { remaining: u32, addr: u64 }
///
/// impl Kernel for Fill {
///     fn step(&mut self, _t: ThreadId, _in: &mut Inbox, out: &mut Vec<Op>) -> KernelStatus {
///         if self.remaining == 0 {
///             return KernelStatus::Done;
///         }
///         out.push(Op::Compute { class: OpClass::IntAlu, count: 4 });
///         out.push(Op::Store { addr: self.addr });
///         self.addr += 64;
///         self.remaining -= 1;
///         KernelStatus::Running
///     }
/// }
/// ```
pub trait Kernel: Send {
    /// Emits the next batch of operations into `out`.
    ///
    /// `inbox` carries the reply to a previously-issued
    /// [`Op::FetchTask`]; it is consumed (reset) by the machine after
    /// this call. Implementations should emit a bounded batch (tens to a
    /// few hundred ops) per step to keep scheduling responsive.
    fn step(&mut self, tid: ThreadId, inbox: &mut Inbox, out: &mut Vec<Op>) -> KernelStatus;
}

/// A kernel assembled from a closure — convenient for tests and examples.
pub struct FnKernel<F>(pub F);

impl<F> Kernel for FnKernel<F>
where
    F: FnMut(ThreadId, &mut Inbox, &mut Vec<Op>) -> KernelStatus + Send,
{
    fn step(&mut self, tid: ThreadId, inbox: &mut Inbox, out: &mut Vec<Op>) -> KernelStatus {
        (self.0)(tid, inbox, out)
    }
}

impl<F> std::fmt::Debug for FnKernel<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnKernel").finish_non_exhaustive()
    }
}

/// A ready-made kernel that emits a fixed homogeneous instruction mix;
/// useful as a calibration load and in examples.
#[derive(Debug, Clone)]
pub struct SyntheticKernel {
    /// Compute operations between consecutive memory accesses.
    pub compute_per_access: u32,
    /// Total memory accesses to perform.
    pub accesses: u64,
    /// First address; accesses stride by `stride` bytes.
    pub base_addr: u64,
    /// Stride between accesses, bytes.
    pub stride: u64,
    /// Fraction (0-255 scale) of accesses that are stores.
    pub store_ratio_256: u8,
    emitted: u64,
}

impl SyntheticKernel {
    /// Creates a synthetic streaming kernel.
    pub fn new(compute_per_access: u32, accesses: u64, base_addr: u64, stride: u64) -> Self {
        Self {
            compute_per_access,
            accesses,
            base_addr,
            stride,
            store_ratio_256: 64, // 25% stores
            emitted: 0,
        }
    }
}

impl Kernel for SyntheticKernel {
    fn step(&mut self, _tid: ThreadId, _inbox: &mut Inbox, out: &mut Vec<Op>) -> KernelStatus {
        use crate::isa::OpClass;
        if self.emitted >= self.accesses {
            return KernelStatus::Done;
        }
        let batch = 64.min(self.accesses - self.emitted);
        for i in 0..batch {
            let k = self.emitted + i;
            if self.compute_per_access > 0 {
                out.push(Op::Compute {
                    class: OpClass::IntAlu,
                    count: self.compute_per_access,
                });
            }
            let addr = self.base_addr + k * self.stride;
            // Deterministic store mix using low address bits.
            if (k % 256) < u64::from(self.store_ratio_256) {
                out.push(Op::Store { addr });
            } else {
                out.push(Op::Load { addr });
            }
        }
        self.emitted += batch;
        if self.emitted >= self.accesses {
            KernelStatus::Done
        } else {
            KernelStatus::Running
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::OpClass;

    #[test]
    fn fn_kernel_delegates() {
        let mut calls = 0;
        let mut k = FnKernel(move |_t, _i: &mut Inbox, out: &mut Vec<Op>| {
            calls += 1;
            out.push(Op::Pause);
            if calls >= 2 {
                KernelStatus::Done
            } else {
                KernelStatus::Running
            }
        });
        let mut inbox = Inbox::default();
        let mut out = Vec::new();
        assert_eq!(
            k.step(ThreadId(0), &mut inbox, &mut out),
            KernelStatus::Running
        );
        assert_eq!(
            k.step(ThreadId(0), &mut inbox, &mut out),
            KernelStatus::Done
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn synthetic_kernel_emits_exact_access_count() {
        let mut k = SyntheticKernel::new(3, 150, 0x1000, 64);
        let mut inbox = Inbox::default();
        let mut out = Vec::new();
        loop {
            let status = k.step(ThreadId(0), &mut inbox, &mut out);
            if status == KernelStatus::Done {
                break;
            }
        }
        let accesses = out
            .iter()
            .filter(|op| matches!(op, Op::Load { .. } | Op::Store { .. }))
            .count();
        assert_eq!(accesses, 150);
        let computes: u64 = out
            .iter()
            .filter_map(|op| match op {
                Op::Compute {
                    count,
                    class: OpClass::IntAlu,
                } => Some(u64::from(*count)),
                _ => None,
            })
            .sum();
        assert_eq!(computes, 450);
    }

    #[test]
    fn synthetic_kernel_strides_addresses() {
        let mut k = SyntheticKernel::new(0, 4, 0x0, 128);
        let mut inbox = Inbox::default();
        let mut out = Vec::new();
        while k.step(ThreadId(0), &mut inbox, &mut out) != KernelStatus::Done {}
        let addrs: Vec<u64> = out
            .iter()
            .map(|op| match op {
                Op::Load { addr } | Op::Store { addr } => *addr,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(addrs, vec![0, 128, 256, 384]);
    }
}
