//! Thermal design exploration: how much PCM, and at what melting point?
//!
//! Sweeps the phase-change material mass and melting temperature, printing
//! the resulting sprint duration at 16 W and the post-sprint cooldown —
//! the Section 4 design space.
//!
//! Run with: `cargo run --release --example thermal_design`

use computational_sprinting::thermal::analysis::{simulate_cooldown, simulate_sprint};
use computational_sprinting::thermal::{Material, PhoneThermalParams};

fn main() {
    println!("PCM mass sweep (melting point 60 C, 16 W sprint):");
    println!("  mass      sprint duration   plateau    cooldown");
    for mass_mg in [15.0, 50.0, 100.0, 140.0, 200.0] {
        let params = PhoneThermalParams::hpca().with_pcm_mass_g(mass_mg / 1000.0);
        let mut phone = params.build();
        let sprint = simulate_sprint(&mut phone, 16.0, 0.002, 10.0);
        let cooldown = simulate_cooldown(&mut phone, 0.0, 3.0, 0.02, 200.0);
        println!(
            "  {mass_mg:>5.0} mg  {:>10.2} s  {:>9.2} s  {:>8.0} s",
            sprint.duration_s.unwrap_or(f64::NAN),
            sprint.plateau_s().unwrap_or(0.0),
            cooldown.t_near_ambient_s.unwrap_or(f64::NAN),
        );
    }

    println!();
    println!("melting point sweep (140 mg, 16 W sprint, Tmax 70 C):");
    println!("  Tmelt     sprint duration   sustainable power");
    for melt_c in [40.0, 50.0, 60.0, 65.0] {
        let mut params = PhoneThermalParams::hpca();
        params.pcm_material =
            Material::new(format!("pcm-{melt_c}C"), 0.3, 1.0, 100.0, Some(melt_c), 5.0);
        let phone_probe = params.clone().build();
        let tdp = phone_probe.tdp_w();
        let mut phone = params.build();
        let sprint = simulate_sprint(&mut phone, 16.0, 0.002, 10.0);
        println!(
            "  {melt_c:>4.0} C   {:>10.2} s  {:>12.2} W",
            sprint.duration_s.unwrap_or(f64::NAN),
            tdp,
        );
    }

    println!();
    println!("beyond the phone: a server-class lumped design point (data-center sprinting):");
    {
        use computational_sprinting::core::{LumpedThermal, ThermalModel};
        let mut node = LumpedThermal::server_heatsink();
        let tdp = node.tdp_w();
        // How long can it hold 4x its sustainable power before the limit?
        let sprint_w = 4.0 * tdp;
        node.set_chip_power_w(sprint_w);
        let mut t = 0.0;
        while !node.at_thermal_limit() && t < 600.0 {
            node.advance(0.1);
            t += 0.1;
        }
        println!(
            "  heatsink node: TDP {tdp:.0} W; holds a {sprint_w:.0} W sprint for {t:.0} s \
             on sensible headroom alone"
        );
    }

    println!();
    println!("solid heat storage instead of PCM (Section 4.1 sizing):");
    for material in [Material::copper(), Material::aluminum()] {
        let mass = material.mass_for_sensible_storage_g(16.0, 10.0);
        let thickness = material.block_thickness_mm(mass, 64.0);
        println!(
            "  {:<9} {:>6.1} g, {:>5.1} mm thick over a 64 mm2 die for 16 J / 10 K",
            material.name(),
            mass,
            thickness
        );
    }
}
