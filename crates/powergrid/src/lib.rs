//! Power-delivery modelling for computational sprinting.
//!
//! This crate implements the electrical side of *Computational Sprinting*
//! (Raghavan et al., HPCA 2012, Section 5): a small SPICE-like transient
//! simulator (modified nodal analysis with trapezoidal/backward-Euler
//! companion models, written from scratch), the Figure 5 power distribution
//! network spanning regulator, board, package and on-chip grid, and the
//! Figure 6 core-activation experiments showing that abrupt activation of
//! 16 power-gated cores collapses the supply while a 128 µs linear ramp
//! stays within the 2% tolerance.
//!
//! # Quick start
//!
//! ```
//! use sprint_powergrid::activation::{ActivationExperiment, ActivationSchedule};
//!
//! // Abrupt activation of all 16 cores: tolerance violated.
//! let mut exp = ActivationExperiment::hpca(ActivationSchedule::Simultaneous);
//! exp.pdn = exp.pdn.with_cores(4); // scaled down for doc-test speed
//! exp.horizon_s = 4e-6;
//! let result = exp.run()?;
//! assert!(result.report.min_v < 1.2);
//! # Ok::<(), sprint_powergrid::transient::TransientError>(())
//! ```
//!
//! # Modules
//!
//! * [`netlist`] — R/L/C/source circuit descriptions.
//! * [`linalg`] — dense LU solver used by the MNA engine.
//! * [`transient`] — companion-model transient simulation.
//! * [`grid`] — the Figure 5 sprint PDN.
//! * [`activation`] — activation schedules and the Figure 6 driver.
//! * [`integrity`] — tolerance-band analysis of supply waveforms.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activation;
pub mod grid;
pub mod integrity;
pub mod linalg;
pub mod netlist;
pub mod transient;

pub use activation::{ActivationExperiment, ActivationResult, ActivationSchedule};
pub use grid::{Decap, PdnParams, RailSegment, SprintPdn};
pub use integrity::{SupplyIntegrityReport, ToleranceSpec};
pub use netlist::{Circuit, CurrentSourceId, Node, VoltageSourceId};
pub use transient::{Integration, TransientError, TransientSim};
