//! # Computational Sprinting — a full-system reproduction
//!
//! This workspace reproduces *Computational Sprinting* (Raghavan, Luo,
//! Chandawalla, Papaefthymiou, Pipe, Wenisch, Martin — HPCA 2012): briefly
//! activating up to 16 otherwise-dark cores on a mobile chip, exceeding its
//! sustainable thermal budget by an order of magnitude for sub-second
//! bursts, buffered by the latent heat of a phase-change material.
//!
//! This crate re-exports the workspace's building blocks:
//!
//! * [`thermal`] — thermal RC networks with PCM nodes (paper Figures 3-4).
//! * [`powergrid`] — MNA transient simulation of the sprint PDN (Figures 5-6).
//! * [`archsim`] — the many-core simulator (Section 8.1 methodology).
//! * [`workloads`] — the six Table 1 vision kernels.
//! * [`powersource`] — batteries, ultracapacitors and pin budgets (Section 6).
//! * [`scaling`] — dark-silicon trend models (Figure 1).
//! * [`core`] — the sprint controller, budget estimator, and the
//!   steppable architecture ⇄ thermal ⇄ power-delivery co-simulation.
//! * [`cluster`] — rack-level sprinting: many sessions against one
//!   shared rack grid *and* one shared power-delivery pool (PDU cap,
//!   ride-through reserve, per-node regulators) under jointly
//!   thermal- and power-aware sprint admission (Porto et al.'s
//!   data-center regime). Fleets may be heterogeneous — per-node
//!   machine configs and share weights via [`cluster::NodeSpec`],
//!   cost-aware placement via [`cluster::Placement`], and competitive
//!   task duplication with loser cancellation
//!   (`examples/hetero_fleet.rs`, `repro hetero`).
//! * [`facility`] — datacenter scale: rows of racks coupled through
//!   shared CRAC airflow and a facility feed, with a global
//!   sprint-admission tier rationing facility headroom across racks,
//!   sharded deterministically over worker threads
//!   (`examples/facility.rs`, `repro facility`), with seeded
//!   deterministic fault injection — sensor lies, supply sags, node
//!   crashes — and graceful degradation spanning every tier
//!   (`examples/faults.rs`, `repro faults`).
//!
//! # Quick start
//!
//! Scenarios compose through [`core::session::ScenarioBuilder`]: a
//! machine, a workload, a thermal backend (any
//! [`core::thermal_model::ThermalModel`]), an electrical supply (any
//! [`core::supply::PowerSupply`]) and a [`core::config::SprintConfig`].
//!
//! ```
//! use computational_sprinting::prelude::*;
//!
//! // A 16-thread burst of the sobel kernel on a 16-core chip, coupled to
//! // the phone thermal model (time-compressed for the test).
//! let mut session = ScenarioBuilder::new()
//!     .machine(MachineConfig::hpca())
//!     .load(suite_loader(WorkloadKind::Sobel, InputSize::A, 16))
//!     .thermal(PhoneThermalParams::hpca().time_scaled(100.0).build())
//!     .config(SprintConfig::hpca_parallel())
//!     .build();
//! session.run_to_completion();
//! let report = session.report();
//! assert!(report.finished);
//!
//! // The one-shot facade is equivalent for run-to-completion scenarios:
//! let machine = loaded_machine(WorkloadKind::Sobel, InputSize::A, MachineConfig::hpca(), 16);
//! let thermal = PhoneThermalParams::hpca().time_scaled(100.0).build();
//! let oneshot = SprintSystem::new(machine, thermal, SprintConfig::hpca_parallel()).run();
//! assert_eq!(oneshot.instructions, report.instructions);
//! ```
//!
//! The session API unlocks scenarios the one-shot runner cannot express:
//! repeated bursts with [`core::session::SprintSession::rest`] pacing
//! between them, supplies that abort a sprint on a current limit (wire in
//! a [`powersource::Battery`] via `ScenarioBuilder::supply`), and
//! pause-inspect-reconfigure loops around
//! [`core::session::SprintSession::step`]. See `examples/` for all three.
//!
//! The thermal backend and the electrical supply are both *ports*:
//! sessions accept owned backends, `&mut` borrows, boxed trait objects,
//! or shared views — which is how [`cluster::ClusterSession`] drives a
//! whole rack of sessions against one `GridThermal` and one
//! `RackSupply` (`examples/rack_sprint.rs` and `examples/rack_power.rs`,
//! `repro rack` and `repro rack_power`).

pub use sprint_archsim as archsim;
pub use sprint_cluster as cluster;
pub use sprint_core as core;
pub use sprint_facility as facility;
pub use sprint_powergrid as powergrid;
pub use sprint_powersource as powersource;
pub use sprint_scaling as scaling;
pub use sprint_thermal as thermal;
pub use sprint_workloads as workloads;

/// Commonly-used items in one import.
pub mod prelude {
    pub use sprint_archsim::{Machine, MachineConfig};
    pub use sprint_cluster::{
        ClusterBuildError, ClusterBuilder, ClusterEvent, ClusterOutcome, ClusterPolicy,
        ClusterReport, ClusterSession, ClusterTask, EventDrivenCluster, NodeSpec, NodeSupplyView,
        NodeThermalView, Placement, PowerPolicy, RackSupply, RackSupplyParams, RackThermal,
        TaskOutcome,
    };
    pub use sprint_core::{
        ControllerEvent, EfficiencyCurve, ExecutionMode, FaultEvent, FaultKind, FaultPlan,
        FaultRates, FaultResponse, HotspotPolicy, IdealSupply, LumpedThermal, PinLimited,
        PowerSupply, Regulator, RunReport, ScenarioBuilder, SessionObserver, SprintConfig,
        SprintSession, SprintSystem, StepOutcome, SupplyPolicy, ThermalModel,
    };
    pub use sprint_facility::{
        Facility, FacilityBuildError, FacilityBuilder, FacilityPolicy, FacilityReport, RackSpec,
        RowParams,
    };
    pub use sprint_powersource::{Battery, HybridSupply, PackagePins, Ultracapacitor};
    pub use sprint_thermal::{
        Floorplan, GridSolver, GridThermal, GridThermalParams, PhoneThermal, PhoneThermalParams,
    };
    pub use sprint_workloads::traffic::TrafficParams;
    pub use sprint_workloads::{
        build_workload, loaded_machine, suite_loader, InputSize, Workload, WorkloadKind,
    };
}
