//! Task arrivals and outcomes for a cluster run.

use serde::{Deserialize, Serialize};
use sprint_workloads::suite::{InputSize, WorkloadKind};

/// One task in the cluster's arrival queue: a suite kernel at a given
/// input size, spawned with `threads` threads on whichever node the
/// scheduler picks.
///
/// Beyond the kernel itself a task carries its *class*: a core-width
/// affinity (`min_cores` — on a heterogeneous fleet, placement prefers
/// nodes wide enough that the task's parallelism is not folded) and a
/// `duplicable` flag (whether competitive-duplication policies may
/// replicate it; a task with side effects outside the simulation's
/// model would set it false). The [`ClusterTask::new`] defaults —
/// no affinity, duplicable — reproduce the pre-class behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterTask {
    /// Kernel to run.
    pub kind: WorkloadKind,
    /// Input size class.
    pub size: InputSize,
    /// Threads to spawn on the node.
    pub threads: usize,
    /// Arrival time, seconds of cluster simulated time.
    pub arrival_s: f64,
    /// Core-width affinity: placement prefers nodes with at least this
    /// many cores (0 = no preference). Soft — a narrower node still
    /// runs the task if nothing wider is idle.
    pub min_cores: usize,
    /// Whether a competitive-duplication policy may replicate this task.
    pub duplicable: bool,
}

impl ClusterTask {
    /// One task with the default class (no core affinity, duplicable).
    pub fn new(kind: WorkloadKind, size: InputSize, threads: usize, arrival_s: f64) -> Self {
        Self {
            kind,
            size,
            threads,
            arrival_s,
            min_cores: 0,
            duplicable: true,
        }
    }

    /// Sets the core-width affinity class.
    pub fn with_min_cores(mut self, min_cores: usize) -> Self {
        self.min_cores = min_cores;
        self
    }

    /// Marks the task non-duplicable (competitive policies run exactly
    /// one copy).
    pub fn not_duplicable(mut self) -> Self {
        self.duplicable = false;
        self
    }

    /// A batch of `count` identical tasks all arriving at time zero —
    /// the makespan benchmark shape.
    pub fn batch(kind: WorkloadKind, size: InputSize, threads: usize, count: usize) -> Vec<Self> {
        vec![Self::new(kind, size, threads, 0.0); count]
    }

    /// `count` identical tasks arriving `spacing_s` apart, the first at
    /// `start_s` — an open-arrival trickle.
    pub fn arrivals(
        kind: WorkloadKind,
        size: InputSize,
        threads: usize,
        count: usize,
        start_s: f64,
        spacing_s: f64,
    ) -> Vec<Self> {
        (0..count)
            .map(|k| Self::new(kind, size, threads, start_s + spacing_s * k as f64))
            .collect()
    }
}

/// What happened to one task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskOutcome {
    /// Index into the cluster's task list.
    pub task: usize,
    /// Node that finished it first.
    pub node: usize,
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// When the (winning) node started it, seconds.
    pub assigned_s: f64,
    /// When the winning node finished it, seconds.
    pub completed_s: f64,
    /// Whether the winning copy was admitted to sprint.
    pub sprinted: bool,
    /// Copies launched (1 unless competitively duplicated).
    pub copies: usize,
}

impl TaskOutcome {
    /// Queueing plus service latency, seconds.
    pub fn latency_s(&self) -> f64 {
        self.completed_s - self.arrival_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_arrives_at_zero() {
        let b = ClusterTask::batch(WorkloadKind::Sobel, InputSize::A, 8, 5);
        assert_eq!(b.len(), 5);
        assert!(b.iter().all(|t| t.arrival_s == 0.0));
    }

    #[test]
    fn arrivals_space_out() {
        let a = ClusterTask::arrivals(WorkloadKind::Kmeans, InputSize::B, 4, 3, 1.0, 0.5);
        let times: Vec<f64> = a.iter().map(|t| t.arrival_s).collect();
        assert_eq!(times, vec![1.0, 1.5, 2.0]);
    }

    #[test]
    fn latency_spans_arrival_to_completion() {
        let o = TaskOutcome {
            task: 0,
            node: 2,
            arrival_s: 1.0,
            assigned_s: 1.5,
            completed_s: 4.0,
            sprinted: true,
            copies: 1,
        };
        assert!((o.latency_s() - 3.0).abs() < 1e-12);
    }
}
