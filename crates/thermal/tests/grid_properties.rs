//! Property-based tests for the grid solver's core invariants: exact
//! energy conservation, monotone relaxation toward ambient, and
//! agreement with the analytic lumped chain for uniform grids.

use proptest::prelude::*;
use sprint_thermal::floorplan::Floorplan;
use sprint_thermal::grid::{GridLayer, GridSolver, GridThermalParams};

/// A randomly-sized sensible three-layer stack with a full-die core:
/// uniform power, so the grid must behave exactly like the series chain.
fn uniform_stack(
    caps: &[f64; 3],
    res: &[f64; 3],
    sink_r: f64,
    lateral_r_sq: f64,
    nx: usize,
    ny: usize,
) -> GridThermalParams {
    GridThermalParams {
        ambient_c: 25.0,
        t_max_c: 200.0,
        nx,
        ny,
        floorplan: Floorplan::full_die(),
        layers: vec![
            GridLayer::sensible("die", caps[0], lateral_r_sq, res[0]),
            GridLayer::sensible("mid", caps[1], lateral_r_sq, res[1]),
            GridLayer::sensible("sink", caps[2], lateral_r_sq, res[2]),
        ],
        r_sink_ambient_k_per_w: sink_r,
        stability_fraction: 0.2,
        solver: GridSolver::Explicit,
        solver_threads: 1,
        adi_explicit_fallback: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: injected energy equals the change in stored
    /// enthalpy plus what the ambient absorbed, for arbitrary powers,
    /// durations, grid resolutions and active-core counts on the
    /// full hpca-like stack (PCM included).
    #[test]
    fn grid_conserves_energy(
        power in 0.0f64..24.0,
        duration in 0.05f64..0.3,
        nx in 2usize..7,
        ny in 2usize..7,
        active in 1usize..17,
    ) {
        let mut g = GridThermalParams::hpca_like().with_grid(nx, ny).build();
        let e0 = g.total_stored_enthalpy_j();
        g.set_active_cores(active);
        g.set_chip_power_w(power);
        g.advance(duration);
        let injected = power * duration;
        let stored = g.total_stored_enthalpy_j() - e0;
        let absorbed = g.boundary_absorbed_j();
        prop_assert!(
            (stored + absorbed - injected).abs() <= 1e-8 * injected.max(1.0),
            "stored {stored} + absorbed {absorbed} != injected {injected}"
        );
    }

    /// With zero power, the hottest deviation from ambient decays
    /// monotonically — sub-stepped explicit integration must never
    /// overshoot or oscillate, even through a PCM refreeze plateau.
    #[test]
    fn grid_relaxes_monotonically_to_ambient(
        heat_power in 4.0f64..20.0,
        heat_time in 0.1f64..0.8,
    ) {
        let mut g = GridThermalParams::hpca_like().with_grid(4, 4).build();
        g.set_chip_power_w(heat_power);
        g.advance(heat_time);
        g.set_chip_power_w(0.0);
        let deviation = |g: &sprint_thermal::grid::GridThermal| {
            let mut worst = 0.0f64;
            for layer in 0..g.layer_count() {
                for y in 0..g.params().ny {
                    for x in 0..g.params().nx {
                        worst = worst.max((g.cell_temp_c(layer, x, y) - 25.0).abs());
                    }
                }
            }
            worst
        };
        let mut prev = deviation(&g);
        for _ in 0..15 {
            g.advance(0.2);
            let now = deviation(&g);
            prop_assert!(
                now <= prev + 1e-9,
                "deviation must not grow with zero power: {now} after {prev}"
            );
            prev = now;
        }
    }

    /// The ADI solver shares the explicit scheme's conservation
    /// invariant bit-for-bit in spirit: its enthalpy updates are
    /// antisymmetric post-sweep fluxes, so injected == stored +
    /// absorbed to roundoff for arbitrary powers, durations, grids and
    /// active-core counts — even mid-melt.
    #[test]
    fn adi_grid_conserves_energy(
        power in 0.0f64..24.0,
        duration in 0.05f64..0.3,
        nx in 2usize..7,
        ny in 2usize..7,
        active in 1usize..17,
    ) {
        let mut g = GridThermalParams::hpca_like()
            .with_grid(nx, ny)
            .with_solver(GridSolver::Adi)
            .build();
        let e0 = g.total_stored_enthalpy_j();
        g.set_active_cores(active);
        g.set_chip_power_w(power);
        g.advance(duration);
        let injected = power * duration;
        let stored = g.total_stored_enthalpy_j() - e0;
        let absorbed = g.boundary_absorbed_j();
        prop_assert!(
            (stored + absorbed - injected).abs() <= 1e-8 * injected.max(1.0),
            "stored {stored} + absorbed {absorbed} != injected {injected}"
        );
    }

    /// Backward-Euler factors are L-stable: with zero power the ADI
    /// solver must relax monotonically too, plateau refreeze included,
    /// despite taking sub-steps far beyond the explicit bound.
    #[test]
    fn adi_grid_relaxes_monotonically_to_ambient(
        heat_power in 4.0f64..20.0,
        heat_time in 0.1f64..0.8,
    ) {
        let mut g = GridThermalParams::hpca_like()
            .with_grid(4, 4)
            .with_solver(GridSolver::Adi)
            .build();
        g.set_chip_power_w(heat_power);
        g.advance(heat_time);
        g.set_chip_power_w(0.0);
        let deviation = |g: &sprint_thermal::grid::GridThermal| {
            let mut worst = 0.0f64;
            for layer in 0..g.layer_count() {
                for y in 0..g.params().ny {
                    for x in 0..g.params().nx {
                        worst = worst.max((g.cell_temp_c(layer, x, y) - 25.0).abs());
                    }
                }
            }
            worst
        };
        let mut prev = deviation(&g);
        for _ in 0..15 {
            g.advance(0.2);
            let now = deviation(&g);
            prop_assert!(
                now <= prev + 1e-9,
                "deviation must not grow with zero power: {now} after {prev}"
            );
            prev = now;
        }
    }

    /// A uniformly-powered grid settles at the analytic lumped steady
    /// state `ambient + P * (R1 + R2 + R3 + Rsink)` within 1%, at any
    /// resolution and lateral conductivity.
    #[test]
    fn uniform_grid_matches_lumped_steady_state(
        power in 0.5f64..4.0,
        c1 in 0.05f64..0.3,
        c2 in 0.05f64..0.3,
        c3 in 0.05f64..0.3,
        r1 in 0.5f64..2.0,
        r2 in 0.5f64..2.0,
        r3 in 0.5f64..2.0,
        lateral in 1.0f64..50.0,
        nx in 1usize..4,
        ny in 1usize..4,
    ) {
        let caps = [c1, c2, c3];
        let res = [r1, r2, 1.0]; // last layer's r_to_next is unused
        let params = uniform_stack(&caps, &res, r3, lateral, nx, ny);
        let series = params.series_resistance_k_per_w();
        prop_assert!((series - (r1 + r2 + r3)).abs() < 1e-12);
        let mut g = params.build();
        g.set_chip_power_w(power);
        // ~12x the slowest possible time constant: fully settled.
        let tau_bound: f64 = (c1 + c2 + c3) * (r1 + r2 + r3);
        g.advance(12.0 * tau_bound);
        let expected = 25.0 + power * series;
        let got = g.junction_temp_c();
        prop_assert!(
            (got - expected).abs() <= 0.01 * (expected - 25.0),
            "steady state {got:.4} vs analytic {expected:.4}"
        );
        // Uniform power leaves no gradient at all.
        prop_assert!(g.hotspot_gradient_k() < 1e-6);
    }
}
