//! Transient integration of thermal networks.
//!
//! Uses explicit Heun (second-order predictor-corrector) integration of node
//! enthalpies with automatic sub-stepping: the solver divides each requested
//! step so that no sub-step exceeds a configurable fraction of the smallest
//! RC time constant in the network, which keeps explicit integration stable
//! and accurate. Enthalpy moves between nodes edge-by-edge, so energy is
//! conserved to floating-point roundoff by construction.

use serde::{Deserialize, Serialize};

use crate::circuit::{Node, ThermalNetwork};

/// Transient simulator advancing a [`ThermalNetwork`] through time.
///
/// # Examples
///
/// ```
/// use sprint_thermal::circuit::ThermalNetwork;
/// use sprint_thermal::node::StorageNode;
/// use sprint_thermal::solver::TransientSolver;
///
/// let mut net = ThermalNetwork::new();
/// let j = net.add_storage(StorageNode::sensible_only("junction", 1.0, 25.0));
/// let amb = net.add_boundary("ambient", 25.0);
/// net.connect(j, amb, 10.0);
/// net.set_power(j, 1.0);
///
/// let mut solver = TransientSolver::new(net);
/// solver.advance(100.0); // 100 s ≈ 10 time constants: essentially settled
/// let t = solver.network().temperature_c(j);
/// assert!((t - 35.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransientSolver {
    network: ThermalNetwork,
    time_s: f64,
    /// Maximum sub-step as a fraction of the smallest RC constant.
    stability_fraction: f64,
    /// Cached smallest time constant; recomputed when the network's
    /// structure cannot change (it can't after construction) but phase state
    /// can alter sensible capacities, so it is refreshed on every `advance`.
    scratch_flows: Vec<f64>,
}

impl TransientSolver {
    /// Wraps a network for transient simulation, starting at time zero.
    pub fn new(network: ThermalNetwork) -> Self {
        let n = network.node_count();
        Self {
            network,
            time_s: 0.0,
            stability_fraction: 0.05,
            scratch_flows: vec![0.0; 2 * n],
        }
    }

    /// Sets the stability fraction (sub-step / min time constant).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 0.5` (explicit Euler's stability
    /// region for a pure decay ends at 2.0; 0.5 already trades accuracy).
    pub fn with_stability_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 0.5,
            "stability fraction must be in (0, 0.5]"
        );
        self.stability_fraction = fraction;
        self
    }

    /// Current simulation time in seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// The simulated network (e.g. to read temperatures).
    pub fn network(&self) -> &ThermalNetwork {
        &self.network
    }

    /// Mutable access, e.g. to change injected power between steps.
    pub fn network_mut(&mut self) -> &mut ThermalNetwork {
        &mut self.network
    }

    /// Consumes the solver, returning the network.
    pub fn into_network(self) -> ThermalNetwork {
        self.network
    }

    /// Smallest RC product over storage nodes (seconds), using each node's
    /// current-phase sensible capacity and its lowest-resistance edge.
    fn min_time_constant(&self) -> f64 {
        let mut min_tau = f64::INFINITY;
        for (i, node) in self.network.nodes.iter().enumerate() {
            let c = match node {
                Node::Storage(s) => s.sensible_capacity_j_per_k(),
                Node::Boundary { .. } => continue,
            };
            let mut g_total = 0.0;
            for e in &self.network.edges {
                if e.a == i || e.b == i {
                    g_total += 1.0 / e.resistance_k_per_w;
                }
            }
            if g_total > 0.0 {
                min_tau = min_tau.min(c / g_total);
            }
        }
        if min_tau.is_finite() {
            min_tau
        } else {
            // Isolated nodes only: any step is stable.
            f64::MAX
        }
    }

    /// Advances the simulation by `dt_s` seconds (sub-stepping internally).
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is negative or not finite.
    pub fn advance(&mut self, dt_s: f64) {
        assert!(
            dt_s.is_finite() && dt_s >= 0.0,
            "dt must be finite and non-negative"
        );
        if dt_s == 0.0 {
            return;
        }
        let max_sub = (self.min_time_constant() * self.stability_fraction).max(1e-12);
        let steps = (dt_s / max_sub).ceil().max(1.0) as u64;
        let sub = dt_s / steps as f64;
        for _ in 0..steps {
            self.step_once(sub);
        }
        self.time_s += dt_s;
    }

    /// One explicit Heun sub-step: predictor flows at the current state,
    /// corrector flows at the predicted state, average the two. Each edge's
    /// transfer is antisymmetric between its endpoints, so total enthalpy
    /// (storage + boundary bookkeeping) is conserved exactly.
    fn step_once(&mut self, dt: f64) {
        let n = self.network.node_count();
        let (f0, f1) = self.scratch_flows.split_at_mut(n);
        // Predictor: flows at the current temperatures.
        self.network.net_flows(f0);
        for (i, node) in self.network.nodes.iter_mut().enumerate() {
            if let Node::Storage(s) = node {
                s.add_enthalpy(f0[i] * dt);
            }
        }
        // Corrector: flows at the predicted state.
        self.network.net_flows(f1);
        for (i, node) in self.network.nodes.iter_mut().enumerate() {
            match node {
                // Replace the predictor contribution with the Heun average.
                Node::Storage(s) => s.add_enthalpy((f1[i] - f0[i]) * 0.5 * dt),
                Node::Boundary { .. } => {
                    self.network.boundary_absorbed_j += (f0[i] + f1[i]) * 0.5 * dt;
                }
            }
        }
    }

    /// Advances until `predicate` returns true or `max_time_s` elapses,
    /// checking every `check_interval_s`. Returns the time at which the
    /// predicate first held, or `None` on timeout.
    pub fn advance_until(
        &mut self,
        check_interval_s: f64,
        max_time_s: f64,
        mut predicate: impl FnMut(&ThermalNetwork) -> bool,
    ) -> Option<f64> {
        assert!(check_interval_s > 0.0, "check interval must be positive");
        let deadline = self.time_s + max_time_s;
        while self.time_s < deadline {
            if predicate(&self.network) {
                return Some(self.time_s);
            }
            self.advance(check_interval_s.min(deadline - self.time_s));
        }
        if predicate(&self.network) {
            Some(self.time_s)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{PhaseChange, StorageNode};

    fn rc_network(c: f64, r: f64, p: f64) -> (ThermalNetwork, crate::circuit::NodeId) {
        let mut net = ThermalNetwork::new();
        let j = net.add_storage(StorageNode::sensible_only("j", c, 25.0));
        let amb = net.add_boundary("amb", 25.0);
        net.connect(j, amb, r);
        net.set_power(j, p);
        (net, j)
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        // T(t) = Tamb + P*R*(1 - exp(-t/RC)); C=2, R=5, P=1 → tau=10 s.
        let (net, j) = rc_network(2.0, 5.0, 1.0);
        let mut solver = TransientSolver::new(net);
        for &t in &[1.0, 5.0, 10.0, 20.0] {
            let mut s = solver.clone();
            s.advance(t);
            let expected = 25.0 + 5.0 * (1.0 - (-t / 10.0f64).exp());
            let got = s.network().temperature_c(j);
            assert!(
                (got - expected).abs() < 0.05,
                "t={t}: expected {expected:.3}, got {got:.3}"
            );
        }
        solver.advance(200.0);
        assert!((solver.network().temperature_c(j) - 30.0).abs() < 1e-3);
    }

    #[test]
    fn cooling_decays_exponentially() {
        let (mut net, j) = rc_network(2.0, 5.0, 0.0);
        net.storage_mut(j).set_temperature(75.0);
        let mut solver = TransientSolver::new(net);
        solver.advance(10.0); // one time constant
        let expected = 25.0 + 50.0 * (-1.0f64).exp();
        let got = solver.network().temperature_c(j);
        assert!(
            (got - expected).abs() < 0.1,
            "expected {expected:.2}, got {got:.2}"
        );
    }

    #[test]
    fn energy_is_conserved() {
        let (net, _) = rc_network(2.0, 5.0, 3.0);
        let mut solver = TransientSolver::new(net);
        let e0 = solver.network().total_stored_enthalpy_j();
        solver.advance(42.0);
        let injected = 3.0 * 42.0;
        let stored = solver.network().total_stored_enthalpy_j() - e0;
        let absorbed = solver.network().boundary_absorbed_j();
        assert!(
            (stored + absorbed - injected).abs() < 1e-6 * injected,
            "stored {stored} + absorbed {absorbed} != injected {injected}"
        );
    }

    #[test]
    fn pcm_plateau_holds_temperature() {
        let mut net = ThermalNetwork::new();
        let pcm = net.add_storage(StorageNode::with_phase_change(
            "pcm",
            0.045,
            PhaseChange {
                melt_temp_c: 60.0,
                latent_heat_j: 15.0,
                liquid_heat_capacity_j_per_k: 0.045,
            },
            25.0,
        ));
        let amb = net.add_boundary("amb", 25.0);
        net.connect(pcm, amb, 35.0);
        net.set_power(pcm, 16.0);
        let mut solver = TransientSolver::new(net);
        // Reach the melting point.
        let t_melt = solver
            .advance_until(0.001, 10.0, |n| n.temperature_c(pcm) >= 59.999)
            .expect("must reach melting point");
        // Mid-plateau: temperature pinned at 60 while melting.
        solver.advance(0.4);
        assert!((solver.network().temperature_c(pcm) - 60.0).abs() < 1e-6);
        let f = solver.network().melt_fraction(pcm);
        assert!(f > 0.1 && f < 0.9, "expected mid-melt, got {f}");
        // Plateau length ≈ latent / (P - leak) = 15 / (16 - 1) = 1 s.
        let t_done = solver
            .advance_until(0.001, 10.0, |n| n.melt_fraction(pcm) >= 1.0)
            .expect("must finish melting");
        let plateau = t_done - t_melt;
        assert!(
            (plateau - 1.0).abs() < 0.05,
            "expected ~1 s plateau, got {plateau:.3}"
        );
    }

    #[test]
    fn advance_until_times_out() {
        let (net, j) = rc_network(2.0, 5.0, 0.1);
        let mut solver = TransientSolver::new(net);
        // 0.1 W * 5 K/W = 0.5 K rise max; can never reach 100 C.
        assert!(solver
            .advance_until(0.5, 5.0, |n| n.temperature_c(j) > 100.0)
            .is_none());
    }

    #[test]
    fn zero_dt_is_noop() {
        let (net, j) = rc_network(1.0, 1.0, 1.0);
        let mut solver = TransientSolver::new(net);
        solver.advance(0.0);
        assert_eq!(solver.time_s(), 0.0);
        assert!((solver.network().temperature_c(j) - 25.0).abs() < 1e-12);
    }
}
