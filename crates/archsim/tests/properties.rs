//! Property-based tests for the architectural simulator.

use proptest::prelude::*;
use sprint_archsim::config::MachineConfig;
use sprint_archsim::machine::Machine;
use sprint_archsim::program::SyntheticKernel;

fn run_machine(
    cores: usize,
    threads: usize,
    accesses: u64,
    compute: u32,
    stride: u64,
) -> (u64, sprint_archsim::Stats) {
    let mut m = Machine::new(MachineConfig::hpca().with_cores(cores));
    for t in 0..threads as u64 {
        m.spawn(Box::new(SyntheticKernel::new(
            compute,
            accesses,
            (t + 1) << 26,
            stride,
        )));
    }
    let mut windows = 0;
    while !m.all_done() {
        m.run_window(1_000_000);
        windows += 1;
        assert!(windows < 2_000_000, "livelock: machine never finished");
    }
    (m.time_ps(), *m.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The simulator is deterministic: identical inputs give identical
    /// timing and energy.
    #[test]
    fn deterministic(
        cores in 1usize..8,
        accesses in 100u64..2_000,
        compute in 0u32..32,
    ) {
        let a = run_machine(cores, cores, accesses, compute, 64);
        let b = run_machine(cores, cores, accesses, compute, 64);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1.instructions, b.1.instructions);
        prop_assert!((a.1.dynamic_energy_j - b.1.dynamic_energy_j).abs() < 1e-18);
    }

    /// Instruction count is invariant to the core count: scheduling changes
    /// timing, never the work.
    #[test]
    fn work_conservation(
        threads in 1usize..6,
        accesses in 100u64..1_500,
        compute in 1u32..16,
    ) {
        let single = run_machine(1, threads, accesses, compute, 64);
        let multi = run_machine(threads.max(2), threads, accesses, compute, 64);
        prop_assert_eq!(single.1.instructions, multi.1.instructions);
        prop_assert_eq!(single.1.loads + single.1.stores, multi.1.loads + multi.1.stores);
    }

    /// More cores never slow the wall clock by more than bounded scheduling
    /// noise (work is embarrassingly parallel here), and never beat the
    /// single-core run by more than the core count.
    #[test]
    fn speedup_bounds(threads in 2usize..6, accesses in 200u64..1_000) {
        let t1 = run_machine(1, threads, accesses, 16, 64).0;
        let tn = run_machine(threads, threads, accesses, 16, 64).0;
        let speedup = t1 as f64 / tn as f64;
        prop_assert!(speedup <= threads as f64 * 1.10, "impossible speedup {speedup}");
        prop_assert!(speedup >= 0.9, "parallel run much slower than serial: {speedup}");
    }

    /// Energy grows monotonically with work.
    #[test]
    fn energy_monotone_in_work(accesses in 100u64..1_000, compute in 1u32..16) {
        let small = run_machine(2, 2, accesses, compute, 64);
        let large = run_machine(2, 2, accesses * 2, compute, 64);
        prop_assert!(large.1.dynamic_energy_j > small.1.dynamic_energy_j);
    }

    /// Frequency throttling (constant voltage) stretches time but leaves
    /// per-op energy unchanged: total dynamic energy within a small factor.
    #[test]
    fn throttle_preserves_energy(divisor in 2.0f64..8.0) {
        let base = {
            let mut m = Machine::new(MachineConfig::hpca().with_cores(1));
            m.spawn(Box::new(SyntheticKernel::new(16, 500, 1 << 26, 0)));
            while !m.all_done() { m.run_window(1_000_000); }
            (m.time_ps(), m.stats().dynamic_energy_j)
        };
        let throttled = {
            let mut m = Machine::new(MachineConfig::hpca().with_cores(1));
            m.set_operating_point(1.0 / divisor, 1.0);
            m.spawn(Box::new(SyntheticKernel::new(16, 500, 1 << 26, 0)));
            while !m.all_done() { m.run_window(1_000_000); }
            (m.time_ps(), m.stats().dynamic_energy_j)
        };
        prop_assert!(throttled.0 > base.0, "throttling must slow execution");
        let ratio = throttled.1 / base.1;
        prop_assert!((0.8..1.3).contains(&ratio), "energy ratio {ratio}");
    }
}
