//! # Computational Sprinting — a full-system reproduction
//!
//! This workspace reproduces *Computational Sprinting* (Raghavan, Luo,
//! Chandawalla, Papaefthymiou, Pipe, Wenisch, Martin — HPCA 2012): briefly
//! activating up to 16 otherwise-dark cores on a mobile chip, exceeding its
//! sustainable thermal budget by an order of magnitude for sub-second
//! bursts, buffered by the latent heat of a phase-change material.
//!
//! This crate re-exports the workspace's building blocks:
//!
//! * [`thermal`] — thermal RC networks with PCM nodes (paper Figures 3-4).
//! * [`powergrid`] — MNA transient simulation of the sprint PDN (Figures 5-6).
//! * [`archsim`] — the many-core simulator (Section 8.1 methodology).
//! * [`workloads`] — the six Table 1 vision kernels.
//! * [`powersource`] — batteries, ultracapacitors and pin budgets (Section 6).
//! * [`scaling`] — dark-silicon trend models (Figure 1).
//! * [`core`] — the sprint controller, budget estimator, and coupled
//!   architecture ⇄ thermal co-simulation.
//!
//! # Quick start
//!
//! ```
//! use computational_sprinting::prelude::*;
//!
//! // A 16-thread burst of the sobel kernel on a 16-core chip.
//! let workload = build_workload(WorkloadKind::Sobel, InputSize::A);
//! let mut machine = Machine::new(MachineConfig::hpca());
//! workload.setup(&mut machine, 16);
//!
//! // Couple it to the phone thermal model (time-compressed for the test)
//! // and sprint.
//! let thermal = PhoneThermalParams::hpca().time_scaled(100.0).build();
//! let report = SprintSystem::new(machine, thermal, SprintConfig::hpca_parallel()).run();
//! assert!(report.finished);
//! ```

pub use sprint_archsim as archsim;
pub use sprint_core as core;
pub use sprint_powergrid as powergrid;
pub use sprint_powersource as powersource;
pub use sprint_scaling as scaling;
pub use sprint_thermal as thermal;
pub use sprint_workloads as workloads;

/// Commonly-used items in one import.
pub mod prelude {
    pub use sprint_archsim::{Machine, MachineConfig};
    pub use sprint_core::{ExecutionMode, RunReport, SprintConfig, SprintSystem};
    pub use sprint_powersource::HybridSupply;
    pub use sprint_thermal::{PhoneThermal, PhoneThermalParams};
    pub use sprint_workloads::{build_workload, InputSize, Workload, WorkloadKind};
}
