//! Core-activation ramp exploration (Section 5 / Figure 6).
//!
//! How gradually must 16 power-gated cores wake so the supply stays within
//! its 2% tolerance? Sweeps ramp lengths through the paper's three points
//! and beyond.
//!
//! Run with: `cargo run --release --example powergrid_ramp`

use computational_sprinting::powergrid::{ActivationExperiment, ActivationSchedule};
use computational_sprinting::powersource::PackagePins;

fn main() {
    println!("16-core activation vs. supply integrity (1.2 V nominal, 2% tolerance):");
    println!("  schedule        min voltage   % nominal   settles    verdict");
    let cases = [
        ("abrupt (1 ns)", ActivationSchedule::Simultaneous, 40e-6),
        (
            "ramp 1.28 us",
            ActivationSchedule::LinearRamp { total_s: 1.28e-6 },
            40e-6,
        ),
        (
            "ramp 12.8 us",
            ActivationSchedule::LinearRamp { total_s: 12.8e-6 },
            60e-6,
        ),
        (
            "ramp 128 us",
            ActivationSchedule::LinearRamp { total_s: 128e-6 },
            300e-6,
        ),
    ];
    for (label, schedule, horizon) in cases {
        let mut exp = ActivationExperiment::hpca(schedule);
        exp.horizon_s = horizon;
        let result = exp.run().expect("PDN compiles");
        let r = &result.report;
        println!(
            "  {label:<14} {:>9.4} V   {:>8.2}%   {:>6.2} us   {}",
            r.min_v,
            100.0 * r.min_fraction_of_nominal(),
            r.settle_time_s * 1e6,
            if r.violated {
                "VIOLATES tolerance"
            } else {
                "within tolerance"
            }
        );
    }
    println!();
    println!(
        "The 128 us ramp is {}x shorter than a one-second sprint — a negligible cost.",
        (1.0 / 128e-6) as u64
    );

    // The same 16 A peak must also fit through the package pins
    // (Section 6) — the other half of delivering sprint current.
    println!();
    println!("pin budget for the 16 A peak (100 mA per power/ground pair):");
    for (name, pins) in [
        ("Apple-A4-class", PackagePins::apple_a4()),
        ("MSM8660-class", PackagePins::qualcomm_msm8660()),
    ] {
        let needed = pins.pins_needed(16.0, 1.0);
        println!(
            "  {name:<15} {needed} of {} pins ({:.0}%) at 1 V{}",
            pins.total_pins,
            100.0 * pins.pin_fraction(16.0, 1.0),
            if pins.feasible(16.0, 1.0, 0.35) {
                ""
            } else {
                "  — infeasible below a 35% budget"
            }
        );
    }
}
