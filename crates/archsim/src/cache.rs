//! Private L1 caches with MESI line states.
//!
//! The L1 is a set-associative, LRU, write-back cache. Tags store full line
//! numbers; a line's coherence state lives with it. The directory (in
//! [`crate::llc`]) drives invalidations and downgrades by calling directly
//! into the owning core's L1.

use serde::{Deserialize, Serialize};

use crate::config::CacheConfig;

/// MESI state of an L1 line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LineState {
    /// Invalid (way empty).
    Invalid,
    /// Shared, clean, possibly in other caches.
    Shared,
    /// Exclusive, clean, only copy.
    Exclusive,
    /// Modified, dirty, only copy.
    Modified,
}

/// A victim line evicted to make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Line number of the victim.
    pub line: u64,
    /// Its state at eviction (Modified victims need a writeback).
    pub state: LineState,
}

/// A private set-associative L1 cache model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct L1Cache {
    sets: usize,
    ways: usize,
    set_mask: u64,
    tags: Vec<u64>,
    states: Vec<LineState>,
    /// Per-way last-use stamps for LRU (monotone counter).
    stamps: Vec<u64>,
    tick: u64,
}

impl L1Cache {
    /// Builds an empty cache with the given geometry.
    pub fn new(cfg: &CacheConfig) -> Self {
        cfg.validate();
        let sets = cfg.sets();
        Self {
            sets,
            ways: cfg.ways,
            set_mask: sets as u64 - 1,
            tags: vec![u64::MAX; sets * cfg.ways],
            states: vec![LineState::Invalid; sets * cfg.ways],
            stamps: vec![0; sets * cfg.ways],
            tick: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    #[inline]
    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Looks up a line, updating LRU on hit. Returns its state if present.
    pub fn lookup(&mut self, line: u64) -> Option<LineState> {
        let set = self.set_of(line);
        for way in 0..self.ways {
            let s = self.slot(set, way);
            if self.tags[s] == line && self.states[s] != LineState::Invalid {
                self.tick += 1;
                self.stamps[s] = self.tick;
                return Some(self.states[s]);
            }
        }
        None
    }

    /// Returns the state without touching LRU (for directory probes).
    pub fn probe(&self, line: u64) -> Option<LineState> {
        let set = self.set_of(line);
        for way in 0..self.ways {
            let s = self.slot(set, way);
            if self.tags[s] == line && self.states[s] != LineState::Invalid {
                return Some(self.states[s]);
            }
        }
        None
    }

    /// Sets the state of a resident line.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn set_state(&mut self, line: u64, state: LineState) {
        let set = self.set_of(line);
        for way in 0..self.ways {
            let s = self.slot(set, way);
            if self.tags[s] == line && self.states[s] != LineState::Invalid {
                self.states[s] = state;
                return;
            }
        }
        panic!("set_state on non-resident line {line:#x}");
    }

    /// Inserts a line (after a miss), evicting the LRU way if necessary.
    /// Returns the victim, if one was displaced.
    pub fn insert(&mut self, line: u64, state: LineState) -> Option<Evicted> {
        debug_assert!(state != LineState::Invalid, "cannot insert invalid line");
        let set = self.set_of(line);
        // Prefer an invalid way, else the least recently used.
        let mut victim_way = 0;
        let mut victim_stamp = u64::MAX;
        for way in 0..self.ways {
            let s = self.slot(set, way);
            if self.states[s] == LineState::Invalid {
                victim_way = way;
                break;
            }
            if self.stamps[s] < victim_stamp {
                victim_stamp = self.stamps[s];
                victim_way = way;
            }
        }
        let s = self.slot(set, victim_way);
        let evicted = if self.states[s] != LineState::Invalid {
            Some(Evicted {
                line: self.tags[s],
                state: self.states[s],
            })
        } else {
            None
        };
        self.tick += 1;
        self.tags[s] = line;
        self.states[s] = state;
        self.stamps[s] = self.tick;
        evicted
    }

    /// Invalidates a line (directory-initiated), returning its prior state
    /// if it was resident.
    pub fn invalidate(&mut self, line: u64) -> Option<LineState> {
        let set = self.set_of(line);
        for way in 0..self.ways {
            let s = self.slot(set, way);
            if self.tags[s] == line && self.states[s] != LineState::Invalid {
                let prior = self.states[s];
                self.states[s] = LineState::Invalid;
                return Some(prior);
            }
        }
        None
    }

    /// Downgrades an M/E line to Shared (directory-initiated on a remote
    /// read). Returns true if the line was dirty (needed a writeback).
    pub fn downgrade_to_shared(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        for way in 0..self.ways {
            let s = self.slot(set, way);
            if self.tags[s] == line && self.states[s] != LineState::Invalid {
                let dirty = self.states[s] == LineState::Modified;
                self.states[s] = LineState::Shared;
                return dirty;
            }
        }
        false
    }

    /// Number of resident lines (diagnostics).
    pub fn resident_lines(&self) -> usize {
        self.states
            .iter()
            .filter(|s| **s != LineState::Invalid)
            .count()
    }

    /// Lists all resident lines with their states (used to flush a core's
    /// L1 when it is powered down).
    pub fn resident_line_list(&self) -> Vec<(u64, LineState)> {
        let mut out = Vec::new();
        for set in 0..self.sets {
            for way in 0..self.ways {
                let s = self.slot(set, way);
                if self.states[s] != LineState::Invalid {
                    out.push((self.tags[s], self.states[s]));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> L1Cache {
        // 2 sets x 2 ways x 64 B = 256 B.
        L1Cache::new(&CacheConfig {
            capacity_bytes: 256,
            ways: 2,
            line_bytes: 64,
            hit_latency_cycles: 0,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache();
        assert_eq!(c.lookup(10), None);
        c.insert(10, LineState::Exclusive);
        assert_eq!(c.lookup(10), Some(LineState::Exclusive));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache();
        // Lines 0, 2, 4 map to set 0 (even line numbers with 2 sets).
        c.insert(0, LineState::Shared);
        c.insert(2, LineState::Shared);
        let _ = c.lookup(0); // make line 2 the LRU
        let ev = c.insert(4, LineState::Shared).expect("must evict");
        assert_eq!(ev.line, 2);
        assert_eq!(c.lookup(0), Some(LineState::Shared));
        assert_eq!(c.lookup(2), None);
    }

    #[test]
    fn modified_victim_reported() {
        let mut c = small_cache();
        c.insert(0, LineState::Modified);
        c.insert(2, LineState::Shared);
        let ev = c.insert(4, LineState::Shared).unwrap();
        assert_eq!(ev.state, LineState::Modified);
        assert_eq!(ev.line, 0);
    }

    #[test]
    fn invalidate_and_downgrade() {
        let mut c = small_cache();
        c.insert(7, LineState::Modified);
        assert!(c.downgrade_to_shared(7), "dirty downgrade needs writeback");
        assert_eq!(c.probe(7), Some(LineState::Shared));
        assert_eq!(c.invalidate(7), Some(LineState::Shared));
        assert_eq!(c.probe(7), None);
        assert_eq!(c.invalidate(7), None, "double invalidate is a no-op");
    }

    #[test]
    fn sets_are_independent() {
        let mut c = small_cache();
        c.insert(0, LineState::Shared); // set 0
        c.insert(1, LineState::Shared); // set 1
        c.insert(2, LineState::Shared); // set 0
        c.insert(3, LineState::Shared); // set 1
        assert_eq!(c.resident_lines(), 4, "no eviction across sets");
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn set_state_requires_residency() {
        let mut c = small_cache();
        c.set_state(42, LineState::Shared);
    }
}
