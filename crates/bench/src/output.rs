//! Output helpers: CSV files under `results/` and aligned stdout tables.

use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Directory where the repro harness drops CSV series.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("SPRINT_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir)
}

/// A CSV file being written under `results/`.
#[derive(Debug)]
pub struct Csv {
    path: PathBuf,
    buf: String,
    columns: usize,
}

impl Csv {
    /// Creates `results/<name>.csv` with a header row.
    pub fn new(name: &str, header: &[&str]) -> Self {
        let mut csv = Self {
            path: results_dir().join(format!("{name}.csv")),
            buf: String::new(),
            columns: header.len(),
        };
        csv.raw_row(header.iter());
        csv
    }

    fn raw_row<T: Display>(&mut self, cells: impl Iterator<Item = T>) {
        let mut first = true;
        for c in cells {
            if !first {
                self.buf.push(',');
            }
            first = false;
            let cell = c.to_string();
            debug_assert!(
                !cell.contains(',') && !cell.contains('\n'),
                "cell needs quoting: {cell}"
            );
            self.buf.push_str(&cell);
        }
        self.buf.push('\n');
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.columns, "row arity mismatch");
        self.raw_row(cells.iter());
    }

    /// Flushes the file to disk, returning its path.
    pub fn finish(self) -> PathBuf {
        fs::create_dir_all(self.path.parent().expect("results dir has a parent"))
            .expect("create results dir");
        let mut f = fs::File::create(&self.path).expect("create csv");
        f.write_all(self.buf.as_bytes()).expect("write csv");
        self.path
    }
}

/// An aligned plain-text table for stdout.
#[derive(Debug, Default)]
pub struct TextTable {
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a row of cells.
    pub fn row(&mut self, cells: &[&dyn Display]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Renders with column alignment (first column left, rest right).
    pub fn render(&self) -> String {
        let cols = self.rows.iter().map(Vec::len).max().unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i == 0 {
                    out.push_str(&format!("{cell:<width$}", width = widths[0]));
                } else {
                    out.push_str(&format!("  {cell:>width$}", width = widths[i]));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new();
        t.row(&[&"kernel", &"speedup"]);
        t.row(&[&"sobel", &15.2]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    fn csv_writes_rows() {
        std::env::set_var(
            "SPRINT_RESULTS_DIR",
            std::env::temp_dir().join("sprint-test-results"),
        );
        let mut c = Csv::new("unit_test", &["a", "b"]);
        c.row(&[&1, &2.5]);
        let path = c.finish();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a,b\n1,2.5\n");
        std::env::remove_var("SPRINT_RESULTS_DIR");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn csv_rejects_wrong_arity() {
        let mut c = Csv::new("unit_test_arity", &["a", "b"]);
        c.row(&[&1]);
    }
}
