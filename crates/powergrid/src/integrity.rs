//! Supply-integrity analysis: tolerance bands, bounce, and settling time.

use serde::{Deserialize, Serialize};

/// A supply tolerance specification (nominal voltage and allowed fractional
/// deviation; the paper uses 1-2%, checking against 2%).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToleranceSpec {
    /// Nominal supply voltage, volts.
    pub nominal_v: f64,
    /// Allowed fractional deviation (0.02 = 2%).
    pub fraction: f64,
}

impl ToleranceSpec {
    /// A 2%-of-nominal specification.
    pub fn two_percent_of(nominal_v: f64) -> Self {
        Self {
            nominal_v,
            fraction: 0.02,
        }
    }

    /// Lower bound of the acceptable band, volts.
    pub fn floor_v(&self) -> f64 {
        self.nominal_v * (1.0 - self.fraction)
    }

    /// Upper bound of the acceptable band, volts.
    pub fn ceiling_v(&self) -> f64 {
        self.nominal_v * (1.0 + self.fraction)
    }

    /// Analyzes a `(time, voltage)` waveform against this tolerance.
    ///
    /// The settling voltage is taken as the final sample; the settling time
    /// is the last instant the waveform sat outside a `fraction`-wide band
    /// around that settling voltage (the paper's "time for the supply to
    /// come within 2% of its settling voltage").
    pub fn analyze(&self, waveform: impl IntoIterator<Item = (f64, f64)>) -> SupplyIntegrityReport {
        let points: Vec<(f64, f64)> = waveform.into_iter().collect();
        assert!(!points.is_empty(), "waveform must contain samples");
        let settle_v = points.last().unwrap().1;
        let mut min_v = f64::INFINITY;
        let mut max_v = f64::NEG_INFINITY;
        let mut t_min = 0.0;
        let mut violation_time_s = 0.0;
        let mut violated = false;
        let band = self.fraction * self.nominal_v;
        let mut settle_time_s = 0.0;
        let mut prev_t = points.first().unwrap().0;
        for &(t, v) in &points {
            if v < min_v {
                min_v = v;
                t_min = t;
            }
            if v > max_v {
                max_v = v;
            }
            let dt = t - prev_t;
            prev_t = t;
            if v < self.floor_v() || v > self.ceiling_v() {
                violated = true;
                violation_time_s += dt;
            }
            if (v - settle_v).abs() > band {
                settle_time_s = t;
            }
        }
        SupplyIntegrityReport {
            spec: *self,
            min_v,
            max_v,
            t_min_s: t_min,
            settle_v,
            settle_time_s,
            violated,
            violation_time_s,
        }
    }
}

/// Summary of a supply waveform against a [`ToleranceSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupplyIntegrityReport {
    /// The specification analyzed against.
    pub spec: ToleranceSpec,
    /// Lowest voltage observed (the paper's "bounce"), volts.
    pub min_v: f64,
    /// Highest voltage observed, volts.
    pub max_v: f64,
    /// Time of the minimum, seconds.
    pub t_min_s: f64,
    /// Settling voltage (final sample), volts.
    pub settle_v: f64,
    /// Last time the waveform was outside the band around the settling
    /// voltage, seconds.
    pub settle_time_s: f64,
    /// Whether the absolute tolerance band was ever violated.
    pub violated: bool,
    /// Total time spent outside the absolute tolerance band, seconds.
    pub violation_time_s: f64,
}

impl SupplyIntegrityReport {
    /// Bounce depth below nominal, volts.
    pub fn bounce_v(&self) -> f64 {
        self.spec.nominal_v - self.min_v
    }

    /// Minimum voltage as a fraction of nominal (0.975 = 97.5%).
    pub fn min_fraction_of_nominal(&self) -> f64 {
        self.min_v / self.spec.nominal_v
    }

    /// Steady-state droop below nominal, volts.
    pub fn droop_v(&self) -> f64 {
        self.spec.nominal_v - self.settle_v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ToleranceSpec {
        ToleranceSpec::two_percent_of(1.2)
    }

    #[test]
    fn band_edges() {
        let s = spec();
        assert!((s.floor_v() - 1.176).abs() < 1e-12);
        assert!((s.ceiling_v() - 1.224).abs() < 1e-12);
    }

    #[test]
    fn clean_waveform_passes() {
        let wave = (0..100).map(|i| (i as f64 * 1e-6, 1.19));
        let r = spec().analyze(wave);
        assert!(!r.violated);
        assert_eq!(r.violation_time_s, 0.0);
        assert!((r.min_v - 1.19).abs() < 1e-12);
    }

    #[test]
    fn dip_detected_and_measured() {
        let wave = (0..100).map(|i| {
            let t = i as f64 * 1e-6;
            let v = if (10..20).contains(&i) { 1.171 } else { 1.19 };
            (t, v)
        });
        let r = spec().analyze(wave);
        assert!(r.violated);
        assert!((r.min_v - 1.171).abs() < 1e-12);
        assert!((r.min_fraction_of_nominal() - 0.9758).abs() < 1e-3);
        assert!((r.violation_time_s - 10e-6).abs() < 1.5e-6);
    }

    #[test]
    fn settle_time_tracks_last_excursion() {
        // Ringing that decays: excursions beyond the band end at t = 30 µs.
        let wave = (0..100).map(|i| {
            let t = i as f64 * 1e-6;
            let v = if i <= 30 && i % 2 == 0 { 1.15 } else { 1.19 };
            (t, v)
        });
        let r = spec().analyze(wave);
        assert!((r.settle_time_s - 30e-6).abs() < 1e-9);
        assert!((r.settle_v - 1.19).abs() < 1e-12);
    }

    #[test]
    fn droop_and_bounce_helpers() {
        let wave = vec![(0.0, 1.2), (1.0, 1.15), (2.0, 1.19)];
        let r = spec().analyze(wave);
        assert!((r.bounce_v() - 0.05).abs() < 1e-12);
        assert!((r.droop_v() - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must contain samples")]
    fn empty_waveform_rejected() {
        let _ = spec().analyze(Vec::<(f64, f64)>::new());
    }
}
