//! A many-core architectural simulator for computational sprinting.
//!
//! This crate implements the simulation methodology of *Computational
//! Sprinting* (Raghavan et al., HPCA 2012, Section 8.1): in-order cores
//! with a CPI of one plus cache miss penalties, private 32 KB 8-way L1
//! caches, a shared 4 MB 16-way LLC with 20-cycle hits and a co-located
//! full-map directory (invalidation-based coherence), and a dual-channel
//! memory interface (4 GB/s per channel, 60 ns uncontended round trip).
//! A McPAT-derived per-instruction energy model attributes ≈ 1 nJ/cycle to
//! an active 1 GHz core; PAUSE puts a core to sleep for 1000 cycles at 10%
//! of active power.
//!
//! Workloads are *trace-emitting kernels* (see [`program::Kernel`]): real
//! algorithm implementations that compute natively while emitting the
//! instruction/address stream the timing model consumes.
//!
//! # Quick start
//!
//! ```
//! use sprint_archsim::config::MachineConfig;
//! use sprint_archsim::machine::Machine;
//! use sprint_archsim::program::SyntheticKernel;
//!
//! let mut machine = Machine::new(MachineConfig::hpca().with_cores(4));
//! for t in 0..4u64 {
//!     machine.spawn(Box::new(SyntheticKernel::new(8, 1_000, (t + 1) << 24, 64)));
//! }
//! let report = machine.run_to_completion(1_000_000, 100_000);
//! assert!(report.all_done);
//! println!("energy: {:.3} mJ", machine.stats().dynamic_energy_j * 1e3);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod dvfs;
pub mod energy;
pub mod isa;
pub mod llc;
pub mod machine;
pub mod memctl;
pub mod memmap;
pub mod program;
pub mod stats;
pub mod sync;

pub use config::{CacheConfig, MachineConfig, MemoryConfig};
pub use dvfs::OperatingPoint;
pub use energy::EnergyModel;
pub use isa::{Op, OpClass};
pub use machine::{Machine, WindowReport};
pub use memmap::{AddressSpace, Region};
pub use program::{FnKernel, Inbox, Kernel, KernelStatus, SyntheticKernel, TaskFetch, ThreadId};
pub use stats::Stats;
