//! Execution statistics.

use serde::{Deserialize, Serialize};

/// Counters accumulated over a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Dynamic instructions executed (compute batches count individually).
    pub instructions: u64,
    /// Integer ALU instructions.
    pub int_alu: u64,
    /// Integer multiply instructions.
    pub int_mul: u64,
    /// Floating-point instructions.
    pub fp_alu: u64,
    /// Branch instructions.
    pub branches: u64,
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// LLC hits (on L1 misses).
    pub llc_hits: u64,
    /// LLC misses (to memory).
    pub llc_misses: u64,
    /// Directory-induced L1 invalidations.
    pub invalidations: u64,
    /// Store upgrades (S -> M) requiring remote invalidation.
    pub upgrades: u64,
    /// Dirty transfers from a remote L1 (owner downgrade/writeback).
    pub owner_interventions: u64,
    /// PAUSE naps taken.
    pub pauses: u64,
    /// Cycles spent asleep (PAUSE, idle cores, lock/barrier waits).
    pub sleep_cycles: u64,
    /// Cycles spent actively executing or stalled on memory.
    pub active_cycles: u64,
    /// Total dynamic energy, joules.
    pub dynamic_energy_j: f64,
    /// Barrier episodes completed.
    pub barrier_episodes: u64,
    /// Thread migrations performed.
    pub migrations: u64,
}

impl Stats {
    /// L1 miss ratio (misses over accesses), 0 when no accesses.
    pub fn l1_miss_ratio(&self) -> f64 {
        let acc = self.l1_hits + self.l1_misses;
        if acc == 0 {
            0.0
        } else {
            self.l1_misses as f64 / acc as f64
        }
    }

    /// Memory accesses (loads + stores).
    pub fn mem_accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &Stats) {
        self.instructions += other.instructions;
        self.int_alu += other.int_alu;
        self.int_mul += other.int_mul;
        self.fp_alu += other.fp_alu;
        self.branches += other.branches;
        self.loads += other.loads;
        self.stores += other.stores;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.llc_hits += other.llc_hits;
        self.llc_misses += other.llc_misses;
        self.invalidations += other.invalidations;
        self.upgrades += other.upgrades;
        self.owner_interventions += other.owner_interventions;
        self.pauses += other.pauses;
        self.sleep_cycles += other.sleep_cycles;
        self.active_cycles += other.active_cycles;
        self.dynamic_energy_j += other.dynamic_energy_j;
        self.barrier_episodes += other.barrier_episodes;
        self.migrations += other.migrations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_handles_zero() {
        assert_eq!(Stats::default().l1_miss_ratio(), 0.0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = Stats {
            instructions: 10,
            dynamic_energy_j: 1.5,
            ..Stats::default()
        };
        let b = Stats {
            instructions: 5,
            dynamic_energy_j: 0.5,
            ..Stats::default()
        };
        a.merge(&b);
        assert_eq!(a.instructions, 15);
        assert!((a.dynamic_energy_j - 2.0).abs() < 1e-12);
    }
}
