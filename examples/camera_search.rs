//! Camera-based visual search: the paper's motivating scenario.
//!
//! A user snaps a photo; the device sprints to run feature extraction so
//! the query leaves the phone in a fraction of a second, then cools down
//! before the next shot. The electrical side now runs *inside* the loop:
//! with a bare phone Li-ion cell the sprint aborts on its current limit,
//! while the hybrid battery + ultracapacitor supply carries the burst —
//! Section 6's feasibility argument, reproduced as a simulation.
//!
//! Run with: `cargo run --release --example camera_search`

use computational_sprinting::prelude::*;
use computational_sprinting::thermal::analysis::{cooldown_rule_of_thumb_s, simulate_cooldown};

fn extract_features<S: PowerSupply + 'static>(
    label: &str,
    config: SprintConfig,
    supply: S,
) -> RunReport {
    let mut session = ScenarioBuilder::new()
        .machine(MachineConfig::hpca())
        .load(suite_loader(WorkloadKind::Feature, InputSize::C, 16))
        .thermal(PhoneThermalParams::hpca().time_scaled(40.0).build())
        .supply(supply)
        .config(config)
        .build();
    session.run_to_completion();
    let report = session.report();
    let supply_note = report
        .events
        .iter()
        .find_map(|e| match e {
            ControllerEvent::SupplyLimited {
                requested_w,
                available_w,
                ..
            } => Some(format!(
                "  [supply limited: {requested_w:.1} W asked, {available_w:.1} W available]"
            )),
            _ => None,
        })
        .unwrap_or_default();
    println!(
        "  {label:<26} completes in {:>7.2} ms{supply_note}",
        report.completion_s * 1e3
    );
    report
}

fn main() {
    println!("camera-based search: SURF-style feature extraction on an HD frame");
    let baseline = extract_features(
        "without sprinting:",
        SprintConfig::hpca_sustained(),
        IdealSupply,
    );
    let sprint = extract_features(
        "16-core sprint (hybrid):",
        SprintConfig::hpca_parallel(),
        HybridSupply::phone(),
    );
    let starved = extract_features(
        "16-core sprint (Li-ion):",
        SprintConfig::hpca_parallel(),
        Battery::phone_li_ion(),
    );
    println!(
        "  responsiveness gain: {:.1}x with the hybrid, {:.1}x on the bare cell",
        sprint.speedup_over(baseline.completion_s),
        starved.speedup_over(baseline.completion_s),
    );

    // Electrical feasibility of the burst, at real (de-compressed) scale.
    println!();
    println!("power delivery during the sprint:");
    let mut supply = HybridSupply::phone();
    let sprint_power_w = 16.0;
    match supply.sprint(sprint_power_w, sprint.completion_s * 40.0) {
        Ok(()) => println!(
            "  hybrid Li-ion + ultracap serves {sprint_power_w:.0} W; {:.0} J of sprint capacity left",
            supply.sprint_capacity_j()
        ),
        Err(e) => println!("  supply failed: {e}"),
    }

    // Thermal recovery between shots (full-scale model, real seconds).
    println!();
    println!("cooldown before the next shot:");
    let mut phone = PhoneThermalParams::hpca().build();
    computational_sprinting::thermal::analysis::simulate_sprint(&mut phone, 16.0, 0.002, 5.0);
    let cd = simulate_cooldown(&mut phone, 0.0, 3.0, 0.02, 120.0);
    println!(
        "  measured: junction near ambient after {:.0} s (rule of thumb: {:.0} s)",
        cd.t_near_ambient_s.unwrap_or(f64::NAN),
        cooldown_rule_of_thumb_s(1.0, 16.0, 1.0),
    );
}
