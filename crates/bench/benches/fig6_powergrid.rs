//! Criterion bench: Figure 6's PDN activation transients.

use criterion::{criterion_group, criterion_main, Criterion};
use sprint_powergrid::activation::{ActivationExperiment, ActivationSchedule};

fn bench_powergrid(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("abrupt_16core_40us", |b| {
        b.iter(|| {
            let exp = ActivationExperiment::hpca(ActivationSchedule::Simultaneous);
            std::hint::black_box(exp.run().unwrap().report.min_v)
        })
    });
    g.bench_function("ramp_128us_4core_160us", |b| {
        b.iter(|| {
            let mut exp =
                ActivationExperiment::hpca(ActivationSchedule::LinearRamp { total_s: 128e-6 });
            exp.pdn = exp.pdn.with_cores(4);
            exp.horizon_s = 160e-6;
            std::hint::black_box(exp.run().unwrap().report.min_v)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_powergrid);
criterion_main!(benches);
