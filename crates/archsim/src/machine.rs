//! The many-core machine: cores, threads, scheduler and memory system.
//!
//! Execution is window-driven: the caller advances the machine in small
//! time windows (e.g. the 1000-cycle energy-sampling interval of Section
//! 8.1) and receives the energy dissipated per window, which the sprint
//! runtime feeds into the thermal model. Within a window each powered core
//! runs its assigned threads in order; cross-core interactions (coherence,
//! barrier releases, memory-channel queueing) are resolved at operation
//! granularity with at most one window of ordering skew.
//!
//! Timing follows the paper's model: in-order cores with a CPI of one plus
//! cache miss penalties, a shared LLC with directory coherence, and a
//! dual-channel bandwidth-limited memory interface.

use crate::cache::{L1Cache, LineState};
use crate::config::MachineConfig;
use crate::energy::EnergyModel;
use crate::isa::{Op, OpClass};
use crate::llc::{DirEntry, Llc};
use crate::memctl::MemoryController;
use crate::program::{Inbox, Kernel, KernelStatus, TaskFetch, ThreadId};
use crate::stats::Stats;
use crate::sync::{BarrierState, LockPool, TaskQueues};

/// Result of running one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowReport {
    /// Dynamic energy dissipated during the window, joules.
    pub energy_j: f64,
    /// Instructions retired during the window.
    pub instructions: u64,
    /// True once every thread has finished.
    pub all_done: bool,
    /// Machine time at the end of the window, picoseconds.
    pub time_ps: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    AtBarrier,
    Done,
}

struct Thread {
    kernel: Box<dyn Kernel>,
    buf: Vec<Op>,
    cursor: usize,
    inbox: Inbox,
    state: ThreadState,
    /// Kernel returned `Done`; thread finishes when the buffer drains.
    done_pending: bool,
}

impl std::fmt::Debug for Thread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Thread")
            .field("state", &self.state)
            .field("pending_ops", &(self.buf.len() - self.cursor))
            .finish_non_exhaustive()
    }
}

#[derive(Debug, Clone)]
struct CoreState {
    time_ps: u64,
    run_q: Vec<usize>,
    rr: usize,
    powered: bool,
}

/// The memory hierarchy shared by all cores.
#[derive(Debug)]
struct MemSystem {
    l1s: Vec<L1Cache>,
    llc: Llc,
    memctl: MemoryController,
    energy: EnergyModel,
    llc_hit_ps: u64,
    /// Extra latency for directory interventions (remote L1 access).
    remote_penalty_ps: u64,
}

struct AccessOutcome {
    extra_latency_ps: u64,
    energy_j: f64,
}

impl MemSystem {
    /// Performs a coherent load/store for `core`, returning extra latency
    /// beyond the single issue cycle plus the energy consumed.
    fn access(
        &mut self,
        core: usize,
        addr: u64,
        is_store: bool,
        now_ps: u64,
        stats: &mut Stats,
    ) -> AccessOutcome {
        let line = addr >> 6;
        let bit = 1u64 << core;
        let mut latency = 0u64;
        let mut energy = self.energy.l1_access_j;
        match self.l1s[core].lookup(line) {
            Some(LineState::Modified) => {
                stats.l1_hits += 1;
            }
            Some(LineState::Exclusive) => {
                stats.l1_hits += 1;
                if is_store {
                    // Silent E -> M upgrade.
                    self.l1s[core].set_state(line, LineState::Modified);
                }
            }
            Some(LineState::Shared) => {
                stats.l1_hits += 1;
                if is_store {
                    // Upgrade: invalidate other sharers through the directory.
                    stats.upgrades += 1;
                    latency += self.llc_hit_ps;
                    energy += self.energy.llc_access_j;
                    let dir = self
                        .llc
                        .lookup_mut(line)
                        .expect("inclusive LLC must hold L1-resident line");
                    let sharers = dir.sharers & !bit;
                    dir.sharers = bit;
                    dir.owner = Some(core as u8);
                    if sharers != 0 {
                        latency += self.remote_penalty_ps;
                    }
                    for other in BitIter(sharers) {
                        self.l1s[other].invalidate(line);
                        stats.invalidations += 1;
                    }
                    self.l1s[core].set_state(line, LineState::Modified);
                }
            }
            Some(LineState::Invalid) => unreachable!("lookup never returns Invalid"),
            None => {
                stats.l1_misses += 1;
                latency += self.llc_hit_ps;
                energy += self.energy.llc_access_j;
                let insert_state;
                if let Some(dir) = self.llc.lookup_mut(line) {
                    stats.llc_hits += 1;
                    let owner = dir.owner.map(|o| o as usize);
                    if is_store {
                        let sharers = dir.sharers & !bit;
                        dir.sharers = bit;
                        dir.owner = Some(core as u8);
                        if sharers != 0 || owner.is_some_and(|o| o != core) {
                            latency += self.remote_penalty_ps;
                        }
                        if let Some(o) = owner.filter(|&o| o != core) {
                            if self.l1s[o].probe(line) == Some(LineState::Modified) {
                                stats.owner_interventions += 1;
                            }
                            self.l1s[o].invalidate(line);
                            stats.invalidations += 1;
                        }
                        for other in BitIter(sharers & !(owner.map_or(0, |o| 1 << o))) {
                            self.l1s[other].invalidate(line);
                            stats.invalidations += 1;
                        }
                        insert_state = LineState::Modified;
                    } else {
                        // Load: downgrade a remote owner, join the sharers.
                        if let Some(o) = owner.filter(|&o| o != core) {
                            latency += self.remote_penalty_ps;
                            if self.l1s[o].downgrade_to_shared(line) {
                                dir.dirty = true;
                                stats.owner_interventions += 1;
                            }
                            dir.owner = None;
                            dir.sharers |= bit;
                            insert_state = LineState::Shared;
                        } else if dir.sharers == 0 {
                            dir.sharers = bit;
                            dir.owner = Some(core as u8);
                            insert_state = LineState::Exclusive;
                        } else {
                            dir.sharers |= bit;
                            insert_state = LineState::Shared;
                        }
                    }
                } else {
                    // LLC miss: fetch from memory.
                    stats.llc_misses += 1;
                    energy += self.energy.dram_access_j;
                    let done = self.memctl.read(line, now_ps + self.llc_hit_ps);
                    latency = done.saturating_sub(now_ps);
                    insert_state = if is_store {
                        LineState::Modified
                    } else {
                        LineState::Exclusive
                    };
                    let victim = self.llc.insert(DirEntry {
                        line,
                        sharers: bit,
                        owner: Some(core as u8),
                        dirty: false,
                    });
                    if let Some(v) = victim {
                        // Inclusive eviction: back-invalidate L1 copies.
                        let mut dirty = v.entry.dirty;
                        for holder in BitIter(v.entry.sharers) {
                            if self.l1s[holder].invalidate(v.entry.line)
                                == Some(LineState::Modified)
                            {
                                dirty = true;
                            }
                            stats.invalidations += 1;
                        }
                        if dirty {
                            self.memctl.writeback(v.entry.line, now_ps);
                        }
                    }
                }
                // Install in L1; handle the displaced victim.
                if let Some(ev) = self.l1s[core].insert(line, insert_state) {
                    if let Some(dir) = self.llc.lookup_mut(ev.line) {
                        dir.sharers &= !bit;
                        if dir.owner == Some(core as u8) {
                            dir.owner = None;
                        }
                        if ev.state == LineState::Modified {
                            dir.dirty = true;
                        }
                    } else if ev.state == LineState::Modified {
                        // Victim no longer in LLC (race with inclusive
                        // eviction); write it back to memory directly.
                        self.memctl.writeback(ev.line, now_ps);
                    }
                }
            }
        }
        AccessOutcome {
            extra_latency_ps: latency,
            energy_j: energy,
        }
    }

    /// Flushes a core's L1 (used when powering a core down), writing back
    /// dirty lines and updating the directory.
    fn flush_l1(&mut self, core: usize, now_ps: u64) {
        let bit = 1u64 << core;
        // Collect resident lines first (cannot iterate and mutate).
        let lines: Vec<(u64, LineState)> = {
            let l1 = &self.l1s[core];
            // Probe every possible slot via a full state walk: the cache
            // exposes no iterator, so reconstruct from invalidate calls by
            // walking all lines it reports resident.
            l1.resident_line_list()
        };
        for (line, state) in lines {
            self.l1s[core].invalidate(line);
            if let Some(dir) = self.llc.lookup_mut(line) {
                dir.sharers &= !bit;
                if dir.owner == Some(core as u8) {
                    dir.owner = None;
                }
                if state == LineState::Modified {
                    dir.dirty = true;
                }
            } else if state == LineState::Modified {
                self.memctl.writeback(line, now_ps);
            }
        }
    }
}

/// Iterator over set bits of a u64 (sharer masks).
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(i)
        }
    }
}

/// The simulated many-core machine.
///
/// # Examples
///
/// ```
/// use sprint_archsim::config::MachineConfig;
/// use sprint_archsim::machine::Machine;
/// use sprint_archsim::program::SyntheticKernel;
///
/// let mut m = Machine::new(MachineConfig::hpca().with_cores(4));
/// for t in 0..4 {
///     m.spawn(Box::new(SyntheticKernel::new(8, 1000, t * 1 << 20, 64)));
/// }
/// let report = m.run_to_completion(1_000_000, 1_000_000);
/// assert!(report.all_done);
/// assert!(m.stats().instructions > 4 * 1000);
/// ```
pub struct Machine {
    cfg: MachineConfig,
    freq_multiplier: f64,
    energy_multiplier: f64,
    cycle_ps: u64,
    sleep_cycle_j: f64,
    time_ps: u64,
    active_cores: usize,
    cores: Vec<CoreState>,
    threads: Vec<Thread>,
    live_threads: usize,
    mem: MemSystem,
    barrier: BarrierState,
    locks: LockPool,
    queues: TaskQueues,
    stats: Stats,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("time_ps", &self.time_ps)
            .field("active_cores", &self.active_cores)
            .field("threads", &self.threads.len())
            .field("live_threads", &self.live_threads)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds an idle machine (all cores powered, no threads).
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.validate();
        let cycle_ps = cfg.cycle_ps();
        let nominal_cycle_j = cfg.energy.nominal_core_power_w(cfg.freq_ghz) / (cfg.freq_ghz * 1e9);
        let mem = MemSystem {
            l1s: (0..cfg.cores).map(|_| L1Cache::new(&cfg.l1)).collect(),
            llc: Llc::new(&cfg.llc),
            memctl: MemoryController::new(&cfg.memory, cfg.llc.line_bytes),
            energy: cfg.energy,
            llc_hit_ps: cfg.llc.hit_latency_cycles * cycle_ps,
            remote_penalty_ps: 15 * cycle_ps,
        };
        let cores = (0..cfg.cores)
            .map(|_| CoreState {
                time_ps: 0,
                run_q: Vec::new(),
                rr: 0,
                powered: true,
            })
            .collect();
        Self {
            active_cores: cfg.cores,
            sleep_cycle_j: cfg.sleep_power_fraction * nominal_cycle_j,
            freq_multiplier: 1.0,
            energy_multiplier: 1.0,
            cycle_ps,
            time_ps: 0,
            cores,
            threads: Vec::new(),
            live_threads: 0,
            mem,
            barrier: BarrierState::default(),
            locks: LockPool::default(),
            queues: TaskQueues::default(),
            stats: Stats::default(),
            cfg,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Spawns a thread running `kernel`, assigning it to the least-loaded
    /// active core. Returns its id.
    pub fn spawn(&mut self, kernel: Box<dyn Kernel>) -> ThreadId {
        let tid = self.threads.len();
        self.threads.push(Thread {
            kernel,
            buf: Vec::with_capacity(256),
            cursor: 0,
            inbox: Inbox::default(),
            state: ThreadState::Runnable,
            done_pending: false,
        });
        self.live_threads += 1;
        let core = (0..self.active_cores)
            .min_by_key(|&c| self.cores[c].run_q.len())
            .expect("at least one active core");
        self.cores[core].run_q.push(tid);
        ThreadId(tid)
    }

    /// Creates a shared task queue of `tasks` items; kernels pop from it
    /// with [`Op::FetchTask`].
    pub fn create_task_queue(&mut self, tasks: u32) -> u32 {
        self.queues.create(tasks)
    }

    /// Resets an existing task queue (multi-phase kernels).
    pub fn reset_task_queue(&mut self, queue: u32, tasks: u32) {
        self.queues.reset(queue, tasks);
    }

    /// Current machine time, picoseconds.
    pub fn time_ps(&self) -> u64 {
        self.time_ps
    }

    /// Current machine time, seconds.
    pub fn time_s(&self) -> f64 {
        self.time_ps as f64 * 1e-12
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Number of currently powered cores.
    pub fn active_cores(&self) -> usize {
        self.active_cores
    }

    /// True when all threads have finished.
    pub fn all_done(&self) -> bool {
        self.live_threads == 0 && !self.threads.is_empty()
    }

    /// Live (unfinished) thread count.
    pub fn live_threads(&self) -> usize {
        self.live_threads
    }

    /// Sets the operating point: `freq_multiplier` scales the clock (1.0 =
    /// nominal), `energy_multiplier` scales per-operation energy (V², for
    /// DVFS). Takes effect immediately.
    ///
    /// # Panics
    ///
    /// Panics unless both multipliers are positive and finite.
    pub fn set_operating_point(&mut self, freq_multiplier: f64, energy_multiplier: f64) {
        assert!(
            freq_multiplier.is_finite() && freq_multiplier > 0.0,
            "frequency multiplier must be positive"
        );
        assert!(
            energy_multiplier.is_finite() && energy_multiplier > 0.0,
            "energy multiplier must be positive"
        );
        self.freq_multiplier = freq_multiplier;
        self.energy_multiplier = energy_multiplier;
        self.cycle_ps = ((self.cfg.cycle_ps() as f64) / freq_multiplier)
            .round()
            .max(1.0) as u64;
        self.mem.llc_hit_ps = self.cfg.llc.hit_latency_cycles * self.cycle_ps;
        self.mem.remote_penalty_ps = 15 * self.cycle_ps;
        if self.cfg.idealized_dvfs_memory {
            self.mem.memctl.set_speed_multiplier(freq_multiplier);
        }
    }

    /// Current frequency multiplier.
    pub fn frequency_multiplier(&self) -> f64 {
        self.freq_multiplier
    }

    /// Powers `n` cores (clamped to the physical core count) and migrates
    /// all live threads onto them round-robin. Migration costs
    /// `migration_cost_cycles` on every receiving core and flushes the L1s
    /// of powered-down cores (write-backs included).
    pub fn set_active_cores(&mut self, n: usize) {
        let n = n.clamp(1, self.cfg.cores);
        if n == self.active_cores && self.cores[..n].iter().all(|c| c.powered) {
            return;
        }
        // Flush L1s of cores being powered down.
        for c in n..self.cfg.cores {
            if self.cores[c].powered {
                self.mem.flush_l1(c, self.time_ps);
            }
        }
        let live: Vec<usize> = (0..self.threads.len())
            .filter(|&t| self.threads[t].state != ThreadState::Done)
            .collect();
        for core in &mut self.cores {
            core.run_q.clear();
            core.rr = 0;
        }
        for (i, &t) in live.iter().enumerate() {
            self.cores[i % n].run_q.push(t);
        }
        self.stats.migrations += live.len() as u64;
        let penalty = self.cfg.migration_cost_cycles * self.cycle_ps;
        for (i, core) in self.cores.iter_mut().enumerate() {
            core.powered = i < n;
            if core.powered {
                core.time_ps = core.time_ps.max(self.time_ps) + penalty;
            }
        }
        self.active_cores = n;
    }

    /// Runs one window of `window_ps` picoseconds, returning the energy
    /// dissipated and instructions retired within it.
    pub fn run_window(&mut self, window_ps: u64) -> WindowReport {
        assert!(window_ps > 0, "window must be non-empty");
        let end = self.time_ps + window_ps;
        let e0 = self.stats.dynamic_energy_j;
        let i0 = self.stats.instructions;
        self.mem.memctl.advance_window(self.time_ps);
        for c in 0..self.cores.len() {
            if self.cores[c].powered {
                self.run_core(c, end);
            }
        }
        self.time_ps = end;
        WindowReport {
            energy_j: self.stats.dynamic_energy_j - e0,
            instructions: self.stats.instructions - i0,
            all_done: self.all_done(),
            time_ps: end,
        }
    }

    /// Convenience driver: run windows until completion or `max_windows`.
    pub fn run_to_completion(&mut self, window_ps: u64, max_windows: usize) -> WindowReport {
        let mut last = WindowReport {
            energy_j: 0.0,
            instructions: 0,
            all_done: self.all_done(),
            time_ps: self.time_ps,
        };
        for _ in 0..max_windows {
            if self.all_done() {
                break;
            }
            last = self.run_window(window_ps);
        }
        last
    }

    fn pick_thread(&mut self, c: usize) -> Option<usize> {
        let core = &mut self.cores[c];
        let n = core.run_q.len();
        for k in 0..n {
            let idx = (core.rr + k) % n;
            let t = core.run_q[idx];
            if self.threads[t].state == ThreadState::Runnable {
                core.rr = idx;
                return Some(t);
            }
        }
        None
    }

    fn run_core(&mut self, c: usize, end_ps: u64) {
        if self.cores[c].time_ps < self.time_ps {
            self.cores[c].time_ps = self.time_ps;
        }
        while self.cores[c].time_ps < end_ps {
            match self.pick_thread(c) {
                Some(t) => self.run_thread(c, t, end_ps),
                None => {
                    // No runnable thread: nap at sleep power, then recheck.
                    let nap = (self.cfg.pause_cycles * self.cycle_ps)
                        .min(end_ps - self.cores[c].time_ps)
                        .max(self.cycle_ps);
                    let cycles = nap / self.cycle_ps;
                    self.stats.sleep_cycles += cycles;
                    self.stats.dynamic_energy_j +=
                        cycles as f64 * self.sleep_cycle_j * self.energy_multiplier;
                    self.cores[c].time_ps += nap;
                }
            }
        }
    }

    /// Runs thread `t` on core `c` until it blocks, exhausts its timeslice,
    /// or the window ends.
    fn run_thread(&mut self, c: usize, t: usize, end_ps: u64) {
        let slice_end = self.cores[c].time_ps + self.cfg.timeslice_cycles * self.cycle_ps;
        let emul = self.energy_multiplier;
        loop {
            let now = self.cores[c].time_ps;
            if now >= end_ps || now >= slice_end {
                self.rotate(c);
                return;
            }
            // Refill the operation buffer if drained.
            if self.threads[t].cursor >= self.threads[t].buf.len() {
                if self.threads[t].done_pending {
                    self.finish_thread(t);
                    self.rotate(c);
                    return;
                }
                let th = &mut self.threads[t];
                th.buf.clear();
                th.cursor = 0;
                let status = th.kernel.step(ThreadId(t), &mut th.inbox, &mut th.buf);
                th.inbox = Inbox::default();
                if status == KernelStatus::Done {
                    th.done_pending = true;
                    if th.buf.is_empty() {
                        self.finish_thread(t);
                        self.rotate(c);
                        return;
                    }
                } else if th.buf.is_empty() {
                    // A running kernel that emits nothing is waiting on
                    // something external; nap to avoid a livelock.
                    th.buf.push(Op::Pause);
                }
            }
            let op = self.threads[t].buf[self.threads[t].cursor];
            match op {
                Op::Compute { class, count } => {
                    let count = u64::from(count);
                    self.cores[c].time_ps += count * self.cycle_ps;
                    let e = (self.mem.energy.compute_j(class) + self.mem.energy.active_cycle_j)
                        * count as f64
                        * emul;
                    self.stats.dynamic_energy_j += e;
                    self.stats.instructions += count;
                    self.stats.active_cycles += count;
                    match class {
                        OpClass::IntAlu => self.stats.int_alu += count,
                        OpClass::IntMul => self.stats.int_mul += count,
                        OpClass::FpAlu => self.stats.fp_alu += count,
                        OpClass::Branch => self.stats.branches += count,
                    }
                    self.threads[t].cursor += 1;
                }
                Op::Load { addr } | Op::Store { addr } => {
                    let is_store = matches!(op, Op::Store { .. });
                    let now = self.cores[c].time_ps;
                    let out = self.mem.access(c, addr, is_store, now, &mut self.stats);
                    let stall_cycles = out.extra_latency_ps / self.cycle_ps;
                    self.cores[c].time_ps += self.cycle_ps + out.extra_latency_ps;
                    // Stall cycles clock-gate most of the pipeline.
                    let stall_j = self.mem.energy.active_cycle_j
                        * self.cfg.stall_power_fraction
                        * stall_cycles as f64;
                    self.stats.dynamic_energy_j +=
                        (out.energy_j + self.mem.energy.active_cycle_j + stall_j) * emul;
                    self.stats.instructions += 1;
                    self.stats.active_cycles += 1 + stall_cycles;
                    if is_store {
                        self.stats.stores += 1;
                    } else {
                        self.stats.loads += 1;
                    }
                    self.threads[t].cursor += 1;
                }
                Op::Pause => {
                    let cycles = self.cfg.pause_cycles;
                    self.cores[c].time_ps += cycles * self.cycle_ps;
                    self.stats.dynamic_energy_j += cycles as f64 * self.sleep_cycle_j * emul;
                    self.stats.pauses += 1;
                    self.stats.sleep_cycles += cycles;
                    self.stats.instructions += 1;
                    self.threads[t].cursor += 1;
                }
                Op::Barrier => {
                    self.threads[t].cursor += 1;
                    self.cores[c].time_ps += 20 * self.cycle_ps;
                    self.stats.instructions += 1;
                    match self.barrier.arrive(t, self.live_threads) {
                        Some(released) => {
                            self.stats.barrier_episodes += 1;
                            for r in released {
                                self.threads[r].state = ThreadState::Runnable;
                            }
                            // This thread (the last arrival) continues.
                        }
                        None => {
                            self.threads[t].state = ThreadState::AtBarrier;
                            self.rotate(c);
                            return;
                        }
                    }
                }
                Op::LockAcquire { lock } => {
                    if self.locks.try_acquire(lock, t) {
                        self.cores[c].time_ps += 20 * self.cycle_ps;
                        self.stats.instructions += 1;
                        self.threads[t].cursor += 1;
                    } else {
                        // Spin with PAUSE (the paper's runtime inserts
                        // PAUSE when spinning on locks), then yield so a
                        // co-scheduled holder can make progress.
                        let cycles = self.cfg.pause_cycles;
                        self.cores[c].time_ps += cycles * self.cycle_ps;
                        self.stats.dynamic_energy_j += cycles as f64 * self.sleep_cycle_j * emul;
                        self.stats.pauses += 1;
                        self.stats.sleep_cycles += cycles;
                        self.rotate(c);
                        return;
                    }
                }
                Op::LockRelease { lock } => {
                    self.locks.release(lock, t);
                    self.cores[c].time_ps += 8 * self.cycle_ps;
                    self.stats.instructions += 1;
                    self.threads[t].cursor += 1;
                }
                Op::FetchTask { queue } => {
                    let task = self.queues.pop(queue);
                    self.threads[t].inbox.task = Some(TaskFetch { queue, task });
                    self.cores[c].time_ps += 30 * self.cycle_ps;
                    self.stats.instructions += 1;
                    self.threads[t].cursor += 1;
                }
            }
        }
    }

    fn rotate(&mut self, c: usize) {
        let core = &mut self.cores[c];
        if !core.run_q.is_empty() {
            core.rr = (core.rr + 1) % core.run_q.len();
        }
    }

    /// Verifies the coherence invariants between the L1s and the
    /// directory; returns a description of the first violation found.
    ///
    /// Invariants checked:
    /// 1. Inclusion: every L1-resident line is LLC-resident.
    /// 2. Single writer: at most one L1 holds a line in M/E, and the
    ///    directory's owner field names it.
    /// 3. Sharer precision: the directory's sharer mask covers every L1
    ///    holding the line.
    /// 4. No S+M mixing: if any L1 holds M, no other holds S.
    ///
    /// Intended for tests and debugging; cost is proportional to total L1
    /// capacity.
    pub fn check_coherence(&self) -> Result<(), String> {
        use crate::cache::LineState;
        let mut holders: std::collections::HashMap<u64, Vec<(usize, LineState)>> =
            std::collections::HashMap::new();
        for (core, l1) in self.mem.l1s.iter().enumerate() {
            for (line, state) in l1.resident_line_list() {
                holders.entry(line).or_default().push((core, state));
            }
        }
        for (line, list) in &holders {
            let dir = self
                .mem
                .llc
                .probe(*line)
                .ok_or_else(|| format!("line {line:#x} in L1s but not LLC (inclusion)"))?;
            let exclusive: Vec<_> = list
                .iter()
                .filter(|(_, s)| matches!(s, LineState::Modified | LineState::Exclusive))
                .collect();
            if exclusive.len() > 1 {
                return Err(format!(
                    "line {line:#x} exclusively held by multiple cores: {list:?}"
                ));
            }
            if let Some(&&(owner, _)) = exclusive.first() {
                if list.len() > 1 {
                    return Err(format!(
                        "line {line:#x} mixes M/E with other copies: {list:?}"
                    ));
                }
                if dir.owner != Some(owner as u8) {
                    return Err(format!(
                        "line {line:#x}: owner {owner} not recorded in directory ({:?})",
                        dir.owner
                    ));
                }
            }
            for (core, _) in list {
                if dir.sharers & (1 << core) == 0 {
                    return Err(format!(
                        "line {line:#x}: core {core} holds it but is missing from sharers {:#b}",
                        dir.sharers
                    ));
                }
            }
        }
        Ok(())
    }

    /// Kills every unfinished thread immediately, returning how many were
    /// killed. The machine-level cancel primitive behind competitive-
    /// duplicate reclamation: when another replica of the same task wins,
    /// the losing machine's threads are discarded mid-kernel rather than
    /// run to completion.
    ///
    /// Killed threads stop retiring instructions the moment this returns:
    /// their op buffers are dropped, every core's run queue is cleared,
    /// and the barrier and lock state is reset (a killed holder cannot
    /// release, and no live thread remains to wait). Caches, memory-system
    /// state, accumulated stats and machine time are left untouched — the
    /// work already executed stays on the books, exactly as a crashed
    /// node's does. After cancellation [`all_done`](Self::all_done) is
    /// true and the machine accepts fresh [`spawn`](Self::spawn)s.
    pub fn cancel_all(&mut self) -> usize {
        let mut killed = 0;
        for th in &mut self.threads {
            if th.state != ThreadState::Done {
                th.state = ThreadState::Done;
                th.buf.clear();
                th.cursor = 0;
                th.done_pending = false;
                killed += 1;
            }
        }
        self.live_threads = 0;
        for core in &mut self.cores {
            core.run_q.clear();
            core.rr = 0;
        }
        self.barrier = BarrierState::default();
        self.locks = LockPool::default();
        killed
    }

    fn finish_thread(&mut self, t: usize) {
        debug_assert_ne!(self.threads[t].state, ThreadState::Done);
        self.threads[t].state = ThreadState::Done;
        self.live_threads -= 1;
        if let Some(released) = self.barrier.recheck(self.live_threads) {
            self.stats.barrier_episodes += 1;
            for r in released {
                self.threads[r].state = ThreadState::Runnable;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{FnKernel, SyntheticKernel};

    fn small_machine(cores: usize) -> Machine {
        Machine::new(MachineConfig::hpca().with_cores(cores))
    }

    #[test]
    fn single_thread_runs_to_completion() {
        let mut m = small_machine(1);
        m.spawn(Box::new(SyntheticKernel::new(4, 500, 1 << 20, 64)));
        let r = m.run_to_completion(1_000_000, 100_000);
        assert!(r.all_done);
        assert_eq!(m.stats().loads + m.stats().stores, 500);
        assert_eq!(m.stats().int_alu, 2000);
    }

    #[test]
    fn compute_timing_is_cpi_one() {
        let mut m = small_machine(1);
        m.spawn(Box::new(FnKernel(
            move |_t, _i: &mut Inbox, out: &mut Vec<Op>| {
                out.push(Op::Compute {
                    class: OpClass::IntAlu,
                    count: 10_000,
                });
                KernelStatus::Done
            },
        )));
        // 10k cycles at 1 GHz = 10 µs (plus scheduling slack < 1 window).
        let mut windows = 0;
        while !m.all_done() {
            m.run_window(1_000_000);
            windows += 1;
            assert!(windows < 1000);
        }
        assert_eq!(m.stats().active_cycles, 10_000);
    }

    #[test]
    fn parallel_speedup_on_independent_work() {
        // Same total work on 1 vs 4 cores: the 4-core run should finish
        // close to 4x faster (compute-bound, private data).
        let run = |cores: usize| -> u64 {
            let mut m = small_machine(cores);
            for t in 0..4u64 {
                m.spawn(Box::new(SyntheticKernel::new(
                    16,
                    20_000,
                    (t + 1) << 24,
                    64,
                )));
            }
            while !m.all_done() {
                m.run_window(1_000_000);
            }
            m.time_ps()
        };
        let t1 = run(1);
        let t4 = run(4);
        let speedup = t1 as f64 / t4 as f64;
        assert!(
            (3.2..4.6).contains(&speedup),
            "expected ~4x speedup, got {speedup:.2} ({t1} vs {t4})"
        );
    }

    #[test]
    fn barrier_synchronizes_threads() {
        // Thread 0 does much more pre-barrier work; both must pass the
        // barrier before post-barrier work begins.
        let mut m = small_machine(2);
        for t in 0..2u32 {
            let mut phase = 0;
            m.spawn(Box::new(FnKernel(
                move |_tid, _i: &mut Inbox, out: &mut Vec<Op>| {
                    phase += 1;
                    match phase {
                        1 => {
                            out.push(Op::Compute {
                                class: OpClass::IntAlu,
                                count: if t == 0 { 50_000 } else { 100 },
                            });
                            out.push(Op::Barrier);
                            KernelStatus::Running
                        }
                        _ => {
                            out.push(Op::Compute {
                                class: OpClass::IntAlu,
                                count: 100,
                            });
                            KernelStatus::Done
                        }
                    }
                },
            )));
        }
        while !m.all_done() {
            m.run_window(1_000_000);
        }
        assert_eq!(m.stats().barrier_episodes, 1);
        // The fast thread must have slept (PAUSEd) while waiting.
        assert!(m.stats().sleep_cycles > 10_000);
    }

    #[test]
    fn locks_serialize_critical_sections() {
        let mut m = small_machine(4);
        for _ in 0..4 {
            let mut iters = 0;
            m.spawn(Box::new(FnKernel(
                move |_tid, _i: &mut Inbox, out: &mut Vec<Op>| {
                    iters += 1;
                    out.push(Op::LockAcquire { lock: 0 });
                    out.push(Op::Compute {
                        class: OpClass::IntAlu,
                        count: 200,
                    });
                    out.push(Op::LockRelease { lock: 0 });
                    if iters >= 5 {
                        KernelStatus::Done
                    } else {
                        KernelStatus::Running
                    }
                },
            )));
        }
        while !m.all_done() {
            m.run_window(1_000_000);
        }
        // 4 threads x 5 acquisitions each.
        assert!(m.stats().instructions > 0);
    }

    #[test]
    fn task_queue_distributes_work() {
        let mut m = small_machine(2);
        let q = m.create_task_queue(10);
        for _ in 0..2 {
            let mut fetched: Vec<u32> = Vec::new();
            let mut waiting = false;
            m.spawn(Box::new(FnKernel(
                move |_tid, inbox: &mut Inbox, out: &mut Vec<Op>| {
                    if waiting {
                        let reply = inbox.task.expect("fetch reply expected");
                        waiting = false;
                        match reply.task {
                            Some(task) => {
                                fetched.push(task);
                                out.push(Op::Compute {
                                    class: OpClass::FpAlu,
                                    count: 50,
                                });
                            }
                            None => return KernelStatus::Done,
                        }
                    }
                    out.push(Op::FetchTask { queue: q });
                    waiting = true;
                    KernelStatus::Running
                },
            )));
        }
        while !m.all_done() {
            m.run_window(1_000_000);
        }
        // All 10 tasks executed exactly once: 10 x 50 FP ops.
        assert_eq!(m.stats().fp_alu, 500);
    }

    #[test]
    fn shared_data_generates_coherence_traffic() {
        // Two threads ping-pong stores to the same line.
        let mut m = small_machine(2);
        for _ in 0..2 {
            let mut iters = 0;
            m.spawn(Box::new(FnKernel(
                move |_tid, _i: &mut Inbox, out: &mut Vec<Op>| {
                    iters += 1;
                    out.push(Op::Store { addr: 0x100000 });
                    out.push(Op::Compute {
                        class: OpClass::IntAlu,
                        count: 10,
                    });
                    if iters >= 100 {
                        KernelStatus::Done
                    } else {
                        KernelStatus::Running
                    }
                },
            )));
        }
        // A small window bounds cross-core interleaving skew, so the two
        // threads genuinely alternate ownership of the contended line.
        while !m.all_done() {
            m.run_window(10_000);
        }
        assert!(
            m.stats().invalidations > 50,
            "ping-pong stores must invalidate: {}",
            m.stats().invalidations
        );
    }

    #[test]
    fn migration_to_single_core_multiplexes() {
        let mut m = small_machine(4);
        for t in 0..4u64 {
            m.spawn(Box::new(SyntheticKernel::new(16, 5_000, (t + 1) << 24, 64)));
        }
        m.run_window(1_000_000);
        m.set_active_cores(1);
        assert_eq!(m.active_cores(), 1);
        while !m.all_done() {
            m.run_window(1_000_000);
        }
        assert!(m.stats().migrations >= 4);
        assert_eq!(m.stats().loads + m.stats().stores, 4 * 5_000);
    }

    #[test]
    fn cancel_all_kills_in_flight_threads_and_allows_respawn() {
        let mut m = small_machine(4);
        for t in 0..4u64 {
            m.spawn(Box::new(SyntheticKernel::new(
                16,
                1_000_000,
                (t + 1) << 24,
                64,
            )));
        }
        m.run_window(1_000_000);
        assert!(!m.all_done());
        let before = m.stats().instructions;
        assert_eq!(m.cancel_all(), 4);
        assert!(m.all_done());
        // Cancelled threads retire nothing further; executed work stays.
        m.run_window(1_000_000);
        assert_eq!(m.stats().instructions, before);
        // Cancelling an already-done machine is a no-op.
        assert_eq!(m.cancel_all(), 0);
        // A fresh burst runs normally on the same machine.
        let accesses_before = m.stats().loads + m.stats().stores;
        m.spawn(Box::new(SyntheticKernel::new(4, 500, 1 << 20, 64)));
        let r = m.run_to_completion(1_000_000, 100_000);
        assert!(r.all_done);
        assert_eq!(m.stats().loads + m.stats().stores, accesses_before + 500);
    }

    #[test]
    fn cancel_all_releases_barrier_and_lock_state() {
        // One thread parks at the barrier, the other holds a lock; after
        // cancellation a fresh pair must synchronize cleanly.
        let mut m = small_machine(2);
        m.spawn(Box::new(FnKernel(
            |_t, _i: &mut Inbox, out: &mut Vec<Op>| {
                out.push(Op::Barrier);
                KernelStatus::Running
            },
        )));
        let mut acquired = false;
        m.spawn(Box::new(FnKernel(
            move |_t, _i: &mut Inbox, out: &mut Vec<Op>| {
                if !acquired {
                    acquired = true;
                    out.push(Op::LockAcquire { lock: 0 });
                }
                out.push(Op::Pause);
                KernelStatus::Running
            },
        )));
        for _ in 0..4 {
            m.run_window(1_000_000);
        }
        assert_eq!(m.cancel_all(), 2);
        let episodes = m.stats().barrier_episodes;
        for _ in 0..2 {
            let mut phase = 0;
            m.spawn(Box::new(FnKernel(
                move |_t, _i: &mut Inbox, out: &mut Vec<Op>| {
                    phase += 1;
                    if phase == 1 {
                        out.push(Op::LockAcquire { lock: 0 });
                        out.push(Op::LockRelease { lock: 0 });
                        out.push(Op::Barrier);
                        KernelStatus::Running
                    } else {
                        KernelStatus::Done
                    }
                },
            )));
        }
        while !m.all_done() {
            m.run_window(1_000_000);
        }
        assert_eq!(m.stats().barrier_episodes, episodes + 1);
    }

    #[test]
    fn dvfs_boost_speeds_up_and_costs_energy() {
        // Compute-bound work (footprint fits in L1) so the clock boost
        // translates into speedup; memory-bound work would not scale,
        // which is exactly the paper's point about DVFS sprinting.
        let run = |fmul: f64, emul: f64| -> (u64, f64) {
            let mut m = small_machine(1);
            m.set_operating_point(fmul, emul);
            m.spawn(Box::new(SyntheticKernel::new(32, 5_000, 1 << 24, 0)));
            while !m.all_done() {
                m.run_window(1_000_000);
            }
            (m.time_ps(), m.stats().dynamic_energy_j)
        };
        let (t_base, e_base) = run(1.0, 1.0);
        let boost = 2.5;
        let (t_boost, e_boost) = run(boost, boost * boost);
        let speedup = t_base as f64 / t_boost as f64;
        assert!(
            speedup > 2.0,
            "2.5x clock should speed compute-bound work: {speedup:.2}"
        );
        let eratio = e_boost / e_base;
        assert!(
            (4.0..8.0).contains(&eratio),
            "V^2 scaling should cost ~6.25x energy: {eratio:.2}"
        );
    }

    #[test]
    fn energy_of_active_core_is_about_one_watt() {
        let mut m = small_machine(1);
        // A realistic mix: mostly L1 hits over a small footprint.
        m.spawn(Box::new(FnKernel({
            let mut i = 0u64;
            move |_t, _in: &mut Inbox, out: &mut Vec<Op>| {
                for _ in 0..16 {
                    out.push(Op::Compute {
                        class: OpClass::IntAlu,
                        count: 2,
                    });
                    out.push(Op::Load {
                        addr: 0x100000 + (i * 64) % 16384,
                    });
                    i += 1;
                }
                if i >= 50_000 {
                    KernelStatus::Done
                } else {
                    KernelStatus::Running
                }
            }
        })));
        while !m.all_done() {
            m.run_window(1_000_000);
        }
        let seconds = m.time_s();
        let watts = m.stats().dynamic_energy_j / seconds;
        assert!(
            (0.6..1.4).contains(&watts),
            "active core power {watts:.2} W should be ≈ 1 W"
        );
    }

    #[test]
    fn llc_misses_hit_memory_bandwidth_wall() {
        // Streaming far beyond LLC capacity: 16 cores should saturate the
        // two channels and scale poorly vs 4 cores.
        let run = |cores: usize| -> u64 {
            let mut m = small_machine(cores);
            for t in 0..cores as u64 {
                // 8 MB stream per thread, no compute: pure bandwidth.
                m.spawn(Box::new(SyntheticKernel::new(1, 40_000, (t + 1) << 28, 64)));
            }
            while !m.all_done() {
                m.run_window(1_000_000);
            }
            m.time_ps()
        };
        let t1 = run(1);
        let t4 = run(4);
        let t16 = run(16);
        // Each thread performs the same work, so perfect scaling keeps the
        // wall-clock flat as cores grow. Two channels comfortably feed 4
        // streaming cores but saturate well before 16, so the 16-core run
        // must take substantially longer than the 4-core run.
        assert!(
            t16 as f64 > 1.5 * t4 as f64,
            "16 cores must hit the bandwidth wall: t4={t4}, t16={t16}"
        );
        assert!(
            (t4 as f64) < 2.0 * t1 as f64,
            "4 streaming cores should not saturate two channels: t1={t1}, t4={t4}"
        );
    }
}
