//! Per-core hotspots on the HotSpot-style grid backend, and the
//! hotspot-aware core-count throttle.
//!
//! A lumped RC model reports one junction temperature, so all 16
//! sprinting cores look equally hot. The grid backend maps each core's
//! power onto the die cells it occupies: center cores, surrounded by
//! other hot cores, run several degrees hotter than edge cores, and the
//! *hottest cell* — not the die average — is what first reaches the
//! 70 C limit. This example sprints the same 16-thread sobel burst
//! twice on the grid:
//!
//! * **hard abort** (the paper's controller): the sprint runs full
//!   width until the hotspot trips the thermal failsafe;
//! * **shed-cores** (`HotspotPolicy::ShedCores`): the controller sheds
//!   sprinting cores as hotspot headroom shrinks, trading width for a
//!   longer sprint and an earlier finish.
//!
//! A third run repeats the shed-cores sprint on a 32x32 grid with the
//! semi-implicit ADI solver — a resolution where the explicit solver
//! would spend minutes sub-stepping — to show the per-core temperature
//! map sharpening as cells stop averaging over quarter-core areas.
//!
//! Run with: `cargo run --release --example grid_hotspot`

use computational_sprinting::prelude::*;

/// Thermal time compression (the same trick as the paper's 1.5 mg
/// configuration) so the run takes milliseconds of simulated time.
const COMPRESS: f64 = 600.0;

fn run(policy: HotspotPolicy) -> (RunReport, GridThermal) {
    run_on(policy, GridThermalParams::hpca_like())
}

fn run_on(policy: HotspotPolicy, thermal: GridThermalParams) -> (RunReport, GridThermal) {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.hotspot = policy;
    let mut session = ScenarioBuilder::new()
        .machine(MachineConfig::hpca())
        .load(suite_loader(WorkloadKind::Sobel, InputSize::C, 16))
        .thermal(
            thermal
                .time_scaled(COMPRESS)
                .with_env_solver_threads()
                .build(),
        )
        .config(cfg)
        .trace_capacity(0)
        .build();
    session.run_to_completion();
    (session.report(), session.thermal().clone())
}

fn main() {
    let (abort, grid) = run(HotspotPolicy::HardAbort);

    println!("peak per-core temperature map (hard abort, 4x4 floorplan):");
    let temps = grid.peak_core_temps_c();
    for row in (0..4).rev() {
        let cells: Vec<String> = (0..4)
            .map(|col| format!("{:6.1}", temps[row * 4 + col]))
            .collect();
        println!("    {}", cells.join(" "));
    }
    let hottest = temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let coolest = temps.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "    hottest core {hottest:.1} C, coolest {coolest:.1} C -> per-core spread {:.1} K",
        hottest - coolest
    );
    println!(
        "    peak die gradient {:.1} K (a lumped model reports exactly one temperature)",
        grid.peak_hotspot_gradient_k()
    );
    println!();

    let (shed, _) = run(HotspotPolicy::ShedCores {
        start_headroom_k: 3.0,
        min_cores: 4,
    });
    let end_of = |r: &RunReport| r.sprint_end_s.unwrap_or(r.completion_s) * 1e3;
    let sheds = shed
        .events
        .iter()
        .filter(|e| matches!(e, ControllerEvent::HotspotShed { .. }))
        .count();
    println!("policy       sprint-end    completion    max junction");
    println!(
        "hard abort  {:>8.2} ms  {:>9.2} ms  {:>11.1} C",
        end_of(&abort),
        abort.completion_s * 1e3,
        abort.max_junction_c
    );
    println!(
        "shed cores  {:>8.2} ms  {:>9.2} ms  {:>11.1} C   ({sheds} shed events)",
        end_of(&shed),
        shed.completion_s * 1e3,
        shed.max_junction_c
    );
    println!();
    println!(
        "the hotspot ends the full-width sprint at {:.2} ms; shedding cores as the",
        end_of(&abort)
    );
    println!(
        "hottest cell nears Tmax stretches the sprint {:.1}x and finishes {:.1}x sooner.",
        end_of(&shed) / end_of(&abort),
        abort.completion_s / shed.completion_s
    );

    // The same shed-cores sprint at 32x32 with the semi-implicit ADI
    // solver: 16x the cells of the 8x8 default, yet the sub-step stays
    // pinned to the (resolution-independent) vertical time constant.
    let (fine, fine_grid) = run_on(
        HotspotPolicy::ShedCores {
            start_headroom_k: 3.0,
            min_cores: 4,
        },
        GridThermalParams::hpca_like()
            .with_grid(32, 32)
            .with_solver(GridSolver::Adi),
    );
    println!();
    println!("fine grid (32x32, ADI solver) peak per-core map, shed-cores policy:");
    let temps = fine_grid.peak_core_temps_c();
    for row in (0..4).rev() {
        let cells: Vec<String> = (0..4)
            .map(|col| format!("{:6.1}", temps[row * 4 + col]))
            .collect();
        println!("    {}", cells.join(" "));
    }
    println!(
        "    sprint end {:.2} ms, completion {:.2} ms, peak die gradient {:.1} K",
        end_of(&fine),
        fine.completion_s * 1e3,
        fine_grid.peak_hotspot_gradient_k()
    );
    println!(
        "    (8x8 cells average ~quarter-core areas; at 32x32 the gradient sharpens\n     from {:.1} K to {:.1} K while the ADI sub-step stays {:.0}x the explicit bound)",
        grid.peak_hotspot_gradient_k(),
        fine_grid.peak_hotspot_gradient_k(),
        fine_grid.adi_sub_step_s() / fine_grid.sub_step_s()
    );
}
