//! Architecture-level figure reproductions: Figure 2 (conceptual traces),
//! Table 1 (kernel inventory), Figures 7-11 (the evaluation section), and
//! the runtime ablations.

use sprint_archsim::config::MachineConfig;
use sprint_core::conceptual::{run_conceptual, ConceptualMode};
use sprint_core::config::{
    AbortPolicy, BudgetEstimator, ExecutionMode, PacingPolicy, SprintConfig,
};
use sprint_core::metrics::arithmetic_mean;
use sprint_core::session::ScenarioBuilder;
use sprint_workloads::sobel::SobelWorkload;
use sprint_workloads::suite::{loaded_machine, InputSize, Workload, WorkloadKind};

use crate::harness::{run_baseline, run_coupled, run_fixed_cores_with, ThermalDesign};
use crate::output::{Csv, TextTable};

/// Figure 2: the three conceptual execution modes.
pub fn fig2() -> String {
    let mut out =
        String::from("Figure 2 — sustained vs. sprint vs. PCM-augmented sprint (16 cores)\n");
    let mut table = TextTable::new();
    table.row(&[
        &"mode",
        &"completion ms",
        &"sprint end ms",
        &"peak junction C",
    ]);
    for mode in ConceptualMode::ALL {
        let report = run_conceptual(mode, 1_600_000, 1000.0);
        let mut csv = Csv::new(
            &format!("fig2_{}", mode.label().replace('+', "_")),
            &[
                "time_ms",
                "active_cores",
                "instructions",
                "junction_c",
                "melt_fraction",
            ],
        );
        for s in &report.trace {
            csv.row(&[
                &format!("{:.4}", s.time_s * 1e3),
                &s.active_cores,
                &s.instructions,
                &format!("{:.2}", s.junction_c),
                &format!("{:.3}", s.melt_fraction),
            ]);
        }
        let path = csv.finish();
        table.row(&[
            &mode.label(),
            &format!("{:.2}", report.completion_s * 1e3),
            &report
                .sprint_end_s
                .map_or("-".to_string(), |t| format!("{:.2}", t * 1e3)),
            &format!("{:.1}", report.max_junction_c),
        ]);
        out.push_str(&format!("wrote {}\n", path.display()));
    }
    out.push_str(&table.render());
    out.push_str(
        "the PCM panel sustains the full-core sprint longer before falling back\n\
         to one core, completing the same work soonest (paper Figure 2(c)).\n",
    );
    out
}

/// Table 1: the kernel suite with measured instruction mixes.
pub fn table1() -> String {
    let mut out = String::from("Table 1 — parallel kernels used in the evaluation\n");
    let mut table = TextTable::new();
    table.row(&[
        &"kernel",
        &"description",
        &"Minstr",
        &"%mem",
        &"%fp",
        &"%branch",
    ]);
    for kind in WorkloadKind::ALL {
        let mut machine =
            loaded_machine(kind, InputSize::A, MachineConfig::hpca().with_cores(4), 4);
        while !machine.all_done() {
            machine.run_window(1_000_000);
        }
        let s = machine.stats();
        let total = s.instructions as f64;
        table.row(&[
            &kind.name(),
            &kind.description(),
            &format!("{:.1}", total / 1e6),
            &format!("{:.0}%", 100.0 * (s.loads + s.stores) as f64 / total),
            &format!("{:.0}%", 100.0 * s.fp_alu as f64 / total),
            &format!("{:.0}%", 100.0 * s.branches as f64 / total),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// One Figure 7 stack: speedups for both thermal designs of one mode.
struct Stack {
    full: f64,
    limited: f64,
}

fn speedup_stack(
    kind: WorkloadKind,
    size: InputSize,
    config: &SprintConfig,
    baseline_s: f64,
) -> Stack {
    let full = run_coupled(kind, size, 16, config.clone(), ThermalDesign::FullPcm);
    let limited = run_coupled(kind, size, 16, config.clone(), ThermalDesign::LimitedPcm);
    Stack {
        full: baseline_s / full.time_s,
        limited: baseline_s / limited.time_s,
    }
}

/// Figure 7: 16-core parallel sprint vs. idealized DVFS, both PCM sizes.
pub fn fig7() -> String {
    let mut out = String::from("Figure 7 — speedup on 16 cores vs. idealized DVFS (C inputs)\n");
    let mut table = TextTable::new();
    table.row(&[
        &"kernel",
        &"par 150mg",
        &"par 1.5mg",
        &"dvfs 150mg",
        &"dvfs 1.5mg",
    ]);
    let mut csv = Csv::new(
        "fig7",
        &[
            "kernel",
            "parallel_150mg",
            "parallel_1p5mg",
            "dvfs_150mg",
            "dvfs_1p5mg",
        ],
    );
    let mut par_speedups = Vec::new();
    for kind in WorkloadKind::ALL {
        let size = InputSize::C;
        let base = run_baseline(kind, size);
        let par = speedup_stack(kind, size, &SprintConfig::hpca_parallel(), base.time_s);
        let dvfs = speedup_stack(kind, size, &SprintConfig::hpca_dvfs(), base.time_s);
        par_speedups.push(par.full);
        table.row(&[
            &kind.name(),
            &format!("{:.1}x", par.full),
            &format!("{:.1}x", par.limited),
            &format!("{:.1}x", dvfs.full),
            &format!("{:.1}x", dvfs.limited),
        ]);
        csv.row(&[
            &kind.name(),
            &format!("{:.2}", par.full),
            &format!("{:.2}", par.limited),
            &format!("{:.2}", dvfs.full),
            &format!("{:.2}", dvfs.limited),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "average parallel (150mg) speedup: {:.1}x   (paper: 10.2x)\n\
         DVFS tops out near the 2.5x cube-root bound; limited PCM truncates both.\n\
         wrote {}\n",
        arithmetic_mean(&par_speedups),
        csv.finish().display()
    ));
    out
}

/// Figure 8: sobel speedup vs. image size (megapixels).
pub fn fig8(quick: bool) -> String {
    let mut out = String::from("Figure 8 — sobel speedup vs. input size (16 cores)\n");
    let mut table = TextTable::new();
    table.row(&[&"megapixels", &"par 150mg", &"par 1.5mg", &"dvfs 1.5mg"]);
    let mut csv = Csv::new(
        "fig8",
        &[
            "megapixels",
            "parallel_150mg",
            "parallel_1p5mg",
            "dvfs_1p5mg",
        ],
    );
    let sizes: &[(usize, usize)] = if quick {
        &[(800, 640), (1600, 1280)]
    } else {
        &[
            (800, 640),
            (1136, 896),
            (1600, 1280),
            (2272, 1808),
            (3216, 2560),
        ]
    };
    for &(w, h) in sizes {
        let mp = (w * h) as f64 / 1e6;
        let run = |config: SprintConfig, design: ThermalDesign| -> f64 {
            let mut session = ScenarioBuilder::new()
                .machine(MachineConfig::hpca())
                .load(move |m| SobelWorkload::with_dims(w, h, 0xE05E1).setup(m, 16))
                .thermal(design.build())
                .config(config)
                .trace_capacity(0)
                .build();
            session.run_to_completion();
            session.report().completion_s
        };
        let base = run(SprintConfig::hpca_sustained(), ThermalDesign::FullPcm);
        let par_full = base / run(SprintConfig::hpca_parallel(), ThermalDesign::FullPcm);
        let par_lim = base / run(SprintConfig::hpca_parallel(), ThermalDesign::LimitedPcm);
        let dvfs_lim = base / run(SprintConfig::hpca_dvfs(), ThermalDesign::LimitedPcm);
        table.row(&[
            &format!("{mp:.1}"),
            &format!("{par_full:.1}x"),
            &format!("{par_lim:.1}x"),
            &format!("{dvfs_lim:.1}x"),
        ]);
        csv.row(&[
            &format!("{mp:.2}"),
            &format!("{par_full:.2}"),
            &format!("{par_lim:.2}"),
            &format!("{dvfs_lim:.2}"),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "full PCM sustains the sprint at every size; the limited design's speedup\n\
         falls off as the fixed sprint covers less of the growing task (paper Fig 8).\n\
         wrote {}\n",
        csv.finish().display()
    ));
    out
}

/// Figure 9: speedups across input classes A-D for both designs.
pub fn fig9(quick: bool) -> String {
    let mut out = String::from("Figure 9 — speedup on 16 cores across input sizes\n");
    let mut table = TextTable::new();
    table.row(&[&"kernel", &"size", &"par 150mg", &"par 1.5mg"]);
    let mut csv = Csv::new(
        "fig9",
        &["kernel", "size", "parallel_150mg", "parallel_1p5mg"],
    );
    let sizes: &[InputSize] = if quick {
        &[InputSize::A, InputSize::B]
    } else {
        &InputSize::ALL
    };
    for kind in WorkloadKind::ALL {
        for &size in sizes {
            let base = run_baseline(kind, size);
            let stack = speedup_stack(kind, size, &SprintConfig::hpca_parallel(), base.time_s);
            table.row(&[
                &kind.name(),
                &size.label(),
                &format!("{:.1}x", stack.full),
                &format!("{:.1}x", stack.limited),
            ]);
            csv.row(&[
                &kind.name(),
                &size.label(),
                &format!("{:.2}", stack.full),
                &format!("{:.2}", stack.limited),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "larger inputs speed up more under the full design but exhaust the limited\n\
         design sooner (paper Fig 9; feature reaches ~8x at its largest input).\n\
         wrote {}\n",
        csv.finish().display()
    ));
    out
}

/// Figures 10 and 11: speedup and dynamic energy at 1/4/16/64 cores.
pub fn fig10_fig11(size: InputSize, doubled_bw: bool) -> String {
    let mut out = format!(
        "Figures 10 & 11 — scaling at fixed V/f (size {}{})\n",
        size.label(),
        if doubled_bw {
            ", 2x memory bandwidth"
        } else {
            ""
        }
    );
    let mut t10 = TextTable::new();
    t10.row(&[&"kernel", &"1", &"4", &"16", &"64"]);
    let mut t11 = TextTable::new();
    t11.row(&[&"kernel", &"1", &"4", &"16", &"64"]);
    let mut csv = Csv::new(
        if doubled_bw {
            "fig10_fig11_bw2x"
        } else {
            "fig10_fig11"
        },
        &["kernel", "cores", "speedup", "normalized_energy"],
    );
    let core_counts = [1usize, 4, 16, 64];
    for kind in WorkloadKind::ALL {
        let mut speedups = Vec::new();
        let mut energies = Vec::new();
        let base = run_fixed_cores_with(kind, size, 1, doubled_bw);
        for &cores in &core_counts {
            let o = if cores == 1 {
                base.clone()
            } else {
                run_fixed_cores_with(kind, size, cores, doubled_bw)
            };
            let speedup = base.time_s / o.time_s;
            let energy = o.energy_j / base.energy_j;
            csv.row(&[
                &kind.name(),
                &cores,
                &format!("{speedup:.2}"),
                &format!("{energy:.3}"),
            ]);
            speedups.push(format!("{speedup:.1}x"));
            energies.push(format!("{energy:.2}"));
        }
        t10.row(&[
            &kind.name(),
            &speedups[0],
            &speedups[1],
            &speedups[2],
            &speedups[3],
        ]);
        t11.row(&[
            &kind.name(),
            &energies[0],
            &energies[1],
            &energies[2],
            &energies[3],
        ]);
    }
    out.push_str("Figure 10 — normalized speedup\n");
    out.push_str(&t10.render());
    out.push_str("Figure 11 — normalized dynamic energy\n");
    out.push_str(&t11.render());
    out.push_str(&format!(
        "paper anchors: kmeans/sobel keep scaling to 64; feature/disparity are\n\
         bandwidth-limited ({}); segment/texture are parallelism-limited;\n\
         energy ≈ 1x in the linear regime, rising where scaling breaks down.\n\
         wrote {}\n",
        if doubled_bw {
            "doubling bandwidth lifts them toward ~12x at 64"
        } else {
            "try --bw2x to double channel bandwidth"
        },
        csv.finish().display()
    ));
    out
}

/// Ablation: energy-accounting budget estimator vs. oracle temperature.
pub fn ablation_budget() -> String {
    let mut out =
        String::from("Ablation — budget estimator (feature C, limited PCM, 16-core sprint)\n");
    let mut table = TextTable::new();
    table.row(&[
        &"estimator",
        &"speedup",
        &"peak junction C",
        &"sprint end ms",
    ]);
    let base = run_baseline(WorkloadKind::Feature, InputSize::C);
    for (name, estimator) in [
        ("energy-accounting", BudgetEstimator::EnergyAccounting),
        ("oracle-temperature", BudgetEstimator::OracleTemperature),
    ] {
        let mut cfg = SprintConfig::hpca_parallel();
        cfg.estimator = estimator;
        let o = run_coupled(
            WorkloadKind::Feature,
            InputSize::C,
            16,
            cfg,
            ThermalDesign::LimitedPcm,
        );
        table.row(&[
            &name,
            &format!("{:.2}x", base.time_s / o.time_s),
            &format!("{:.1}", o.max_junction_c),
            &o.sprint_end_s
                .map_or("-".to_string(), |t| format!("{:.2}", t * 1e3)),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "the energy estimator tracks the oracle closely while never reading a\n\
         temperature sensor on the fast path (paper Section 7).\n",
    );
    out
}

/// Ablation: migrate-then-sustain vs. hardware throttle-only.
pub fn ablation_abort() -> String {
    let mut out =
        String::from("Ablation — sprint-abort policy (disparity C, limited PCM, 16-core sprint)\n");
    let mut table = TextTable::new();
    table.row(&[&"policy", &"speedup", &"peak junction C"]);
    let base = run_baseline(WorkloadKind::Disparity, InputSize::C);
    for (name, policy, estimator) in [
        (
            "migrate-to-1-core",
            AbortPolicy::MigrateToSingleCore,
            BudgetEstimator::EnergyAccounting,
        ),
        (
            "throttle-only",
            AbortPolicy::ThrottleOnly,
            // Throttle-only is the failsafe path: let the temperature trip it.
            BudgetEstimator::OracleTemperature,
        ),
    ] {
        let mut cfg = SprintConfig::hpca_parallel();
        cfg.abort_policy = policy;
        cfg.estimator = estimator;
        if policy == AbortPolicy::ThrottleOnly {
            cfg.budget_margin = 0.001; // ride the thermal limit
        }
        let o = run_coupled(
            WorkloadKind::Disparity,
            InputSize::C,
            16,
            cfg,
            ThermalDesign::LimitedPcm,
        );
        table.row(&[
            &name,
            &format!("{:.2}x", base.time_s / o.time_s),
            &format!("{:.1}", o.max_junction_c),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "migration resumes nominal-frequency execution on one core; the throttle\n\
         keeps 16 cores at 1/16th clock — similar throughput, but migration frees\n\
         the other cores' leakage/state (the paper prefers migration, Section 7).\n",
    );
    out
}

/// Extension: sprint pacing (budget-aware intensity control).
///
/// For a task larger than the sprint budget, all-out sprinting wastes
/// budget on excess over-TDP drain; pacing spends the same joules at lower
/// intensity, completing more work inside the sprint and shortening the
/// single-core tail.
pub fn ablation_pacing() -> String {
    let mut out = String::from(
        "Extension — sprint pacing (disparity C, limited PCM, budget-aware intensity)\n",
    );
    let mut table = TextTable::new();
    table.row(&[&"policy", &"speedup", &"sprint end ms", &"peak junction C"]);
    let base = run_baseline(WorkloadKind::Disparity, InputSize::C);
    let mut csv = Csv::new(
        "ablation_pacing",
        &["policy", "speedup", "sprint_end_ms", "peak_junction_c"],
    );
    let policies: [(&str, PacingPolicy, usize); 4] = [
        ("all-out-16", PacingPolicy::AllOut, 16),
        ("fixed-8", PacingPolicy::FixedIntensity { cores: 8 }, 16),
        ("fixed-4", PacingPolicy::FixedIntensity { cores: 4 }, 16),
        (
            "staged 16->8->4",
            PacingPolicy::StagedDecay {
                stages: vec![(0.4, 8), (0.75, 4)],
            },
            16,
        ),
    ];
    for (name, pacing, cores) in policies {
        let mut cfg =
            SprintConfig::hpca_parallel().with_mode(ExecutionMode::ParallelSprint { cores });
        cfg.pacing = pacing;
        let o = run_coupled(
            WorkloadKind::Disparity,
            InputSize::C,
            16,
            cfg,
            ThermalDesign::LimitedPcm,
        );
        let speedup = base.time_s / o.time_s;
        let end_ms = o.sprint_end_s.map_or(f64::NAN, |t| t * 1e3);
        table.row(&[
            &name,
            &format!("{speedup:.2}x"),
            &format!("{end_ms:.2}"),
            &format!("{:.1}", o.max_junction_c),
        ]);
        csv.row(&[
            &name,
            &format!("{speedup:.3}"),
            &format!("{end_ms:.3}"),
            &format!("{:.1}", o.max_junction_c),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "pacing stretches the same joule budget over more work: lower-intensity\n\
         sprints drain (P - TDP) watts for P watts of throughput, so they hold the\n\
         sprint longer and shrink the single-core tail on budget-bound tasks.\n",
    );
    out.push_str(&format!("wrote {}\n", csv.finish().display()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_kernels() {
        let s = table1();
        for kind in WorkloadKind::ALL {
            assert!(s.contains(kind.name()), "missing {}", kind.name());
        }
    }
}
