//! End-to-end integration: the full stack from workload to thermal
//! controller, across crates.

use computational_sprinting::prelude::*;

fn machine_a(kind: WorkloadKind, threads: usize) -> Machine {
    loaded_machine(kind, InputSize::A, MachineConfig::hpca(), threads)
}

fn fast_thermal(limited: bool) -> PhoneThermal {
    let p = if limited {
        PhoneThermalParams::limited()
    } else {
        PhoneThermalParams::hpca()
    };
    p.time_scaled(15.0).build()
}

#[test]
fn every_kernel_completes_under_every_mode() {
    for kind in WorkloadKind::ALL {
        for config in [
            SprintConfig::hpca_sustained(),
            SprintConfig::hpca_parallel(),
            SprintConfig::hpca_dvfs(),
        ] {
            let report =
                SprintSystem::new(machine_a(kind, 16), fast_thermal(false), config.clone())
                    .with_trace_capacity(0)
                    .run();
            assert!(
                report.finished,
                "{} under {:?} did not finish",
                kind.name(),
                config.mode
            );
            assert!(report.energy_j > 0.0);
        }
    }
}

#[test]
fn sprinting_always_helps_or_matches() {
    for kind in WorkloadKind::ALL {
        let base = SprintSystem::new(
            machine_a(kind, 16),
            fast_thermal(false),
            SprintConfig::hpca_sustained(),
        )
        .with_trace_capacity(0)
        .run();
        let sprint = SprintSystem::new(
            machine_a(kind, 16),
            fast_thermal(false),
            SprintConfig::hpca_parallel(),
        )
        .with_trace_capacity(0)
        .run();
        let speedup = sprint.speedup_over(base.completion_s);
        assert!(
            speedup > 1.5,
            "{}: sprint speedup {speedup:.2} should be well above 1",
            kind.name()
        );
    }
}

#[test]
fn thermal_limit_is_respected_across_the_suite() {
    for kind in WorkloadKind::ALL {
        let report = SprintSystem::new(
            machine_a(kind, 16),
            fast_thermal(true),
            SprintConfig::hpca_parallel(),
        )
        .with_trace_capacity(0)
        .run();
        assert!(
            report.max_junction_c < 72.0,
            "{}: junction peaked at {:.1} C",
            kind.name(),
            report.max_junction_c
        );
    }
}

#[test]
fn limited_pcm_triggers_migration_on_long_runs() {
    // Kernels big enough to outlast the limited sprint (B size).
    let machine = loaded_machine(
        WorkloadKind::Disparity,
        InputSize::B,
        MachineConfig::hpca(),
        16,
    );
    let report = SprintSystem::new(machine, fast_thermal(true), SprintConfig::hpca_parallel())
        .with_trace_capacity(0)
        .run();
    assert!(report.finished);
    let end = report
        .sprint_end_s
        .expect("sprint must end before the task");
    assert!(end < report.completion_s);
}

#[test]
fn instructions_are_mode_invariant() {
    // The same workload retires the same instruction count no matter how
    // it is scheduled or sprinted.
    let count = |config: SprintConfig| -> u64 {
        SprintSystem::new(
            machine_a(WorkloadKind::Sobel, 16),
            fast_thermal(false),
            config,
        )
        .with_trace_capacity(0)
        .run()
        .instructions
    };
    let a = count(SprintConfig::hpca_sustained());
    let b = count(SprintConfig::hpca_parallel());
    assert_eq!(a, b, "scheduling must not change retired work");
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        SprintSystem::new(
            machine_a(WorkloadKind::Segment, 16),
            fast_thermal(true),
            SprintConfig::hpca_parallel(),
        )
        .with_trace_capacity(0)
        .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.completion_s, b.completion_s);
    assert_eq!(a.instructions, b.instructions);
    assert!((a.energy_j - b.energy_j).abs() < 1e-15);
}
