//! The coupled sprint system — the one-shot compatibility facade over
//! [`SprintSession`](crate::session::SprintSession).
//!
//! Mirrors the paper's methodology (Section 8.1): the machine runs in
//! energy-sampling windows (1000 cycles); each window's dissipated energy
//! drives the thermal RC network; the sprint controller watches the
//! budget/temperature and reconfigures the machine as the sprint
//! progresses. `SprintSystem::new(machine, thermal, config).run()` is the
//! original consuming API and is kept verbatim; it now drives a
//! [`SprintSession`] internally, so everything the steppable API supports
//! (generic thermal backends, electrical supplies) is available here too.

use sprint_archsim::machine::Machine;
use sprint_thermal::phone::PhoneThermal;

pub use crate::session::{RunReport, RunSample};

use crate::config::SprintConfig;
use crate::session::SprintSession;
use crate::supply::{IdealSupply, PowerSupply};
use crate::thermal_model::ThermalModel;

/// The coupled system: a one-shot wrapper that builds a session and runs
/// it to completion.
#[derive(Debug)]
pub struct SprintSystem<T: ThermalModel = PhoneThermal, S: PowerSupply = IdealSupply> {
    machine: Machine,
    thermal: T,
    supply: S,
    config: SprintConfig,
    trace_capacity: usize,
}

impl<T: ThermalModel> SprintSystem<T, IdealSupply> {
    /// Couples a loaded machine (threads already spawned) with a thermal
    /// model under a sprint configuration.
    pub fn new(machine: Machine, thermal: T, config: SprintConfig) -> Self {
        config.validate();
        Self {
            machine,
            thermal,
            supply: IdealSupply,
            config,
            trace_capacity: 2048,
        }
    }
}

impl<T: ThermalModel, S: PowerSupply> SprintSystem<T, S> {
    /// Adds an electrical supply consulted every sampling window
    /// (Section 6): current limits or depletion end the sprint.
    pub fn with_supply<S2: PowerSupply>(self, supply: S2) -> SprintSystem<T, S2> {
        SprintSystem {
            machine: self.machine,
            thermal: self.thermal,
            supply,
            config: self.config,
            trace_capacity: self.trace_capacity,
        }
    }

    /// Limits the retained trace length (0 disables tracing).
    pub fn with_trace_capacity(mut self, samples: usize) -> Self {
        self.trace_capacity = samples;
        self
    }

    /// Read access to the machine (e.g. for stats after a run).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Read access to the thermal model.
    pub fn thermal(&self) -> &T {
        &self.thermal
    }

    /// Converts into the equivalent steppable session without running it.
    pub fn into_session(self) -> SprintSession<T, S> {
        SprintSession::new(
            self.machine,
            self.thermal,
            self.supply,
            self.config,
            self.trace_capacity,
            Vec::new(),
        )
    }

    /// Runs the computation to completion (or the configured time limit),
    /// returning the coupled report.
    pub fn run(self) -> RunReport {
        let mut session = self.into_session();
        session.run_to_completion();
        session.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecutionMode;
    use crate::controller::ControllerEvent;
    use sprint_archsim::config::MachineConfig;
    use sprint_archsim::program::SyntheticKernel;
    use sprint_thermal::phone::PhoneThermalParams;

    /// A compute-heavy load: `threads` kernels with `accesses` L1-resident
    /// accesses each.
    fn loaded_machine(cores: usize, threads: usize, accesses: u64) -> Machine {
        let mut m = Machine::new(MachineConfig::hpca().with_cores(cores));
        for t in 0..threads as u64 {
            m.spawn(Box::new(SyntheticKernel::new(
                32,
                accesses,
                (t + 1) << 26,
                0,
            )));
        }
        m
    }

    /// Thermal model compressed 1000x so tests run in milliseconds of
    /// simulated time.
    fn fast_thermal() -> PhoneThermal {
        PhoneThermalParams::hpca().time_scaled(1000.0).build()
    }

    fn fast_limited_thermal() -> PhoneThermal {
        PhoneThermalParams::limited().time_scaled(1000.0).build()
    }

    #[test]
    fn parallel_sprint_beats_sustained() {
        let work = 20_000;
        let sustained = SprintSystem::new(
            loaded_machine(16, 16, work),
            fast_thermal(),
            SprintConfig::hpca_sustained(),
        )
        .run();
        let sprint = SprintSystem::new(
            loaded_machine(16, 16, work),
            fast_thermal(),
            SprintConfig::hpca_parallel(),
        )
        .run();
        assert!(sustained.finished && sprint.finished);
        let speedup = sprint.speedup_over(sustained.completion_s);
        assert!(
            speedup > 8.0,
            "16-core sprint of independent work should approach 16x: {speedup:.2}"
        );
    }

    #[test]
    fn limited_budget_forces_migration_midway() {
        // Large work against the 100x-smaller PCM: the sprint must end
        // early and finish on one core.
        let report = SprintSystem::new(
            loaded_machine(16, 16, 120_000),
            fast_limited_thermal(),
            SprintConfig::hpca_parallel(),
        )
        .run();
        assert!(report.finished, "run must complete post-sprint");
        let end = report.sprint_end_s.expect("sprint should have ended");
        assert!(
            end < report.completion_s * 0.8,
            "sprint end {end} should precede completion {}",
            report.completion_s
        );
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, ControllerEvent::SprintEnded { .. })));
    }

    #[test]
    fn junction_never_exceeds_tmax_materially() {
        let report = SprintSystem::new(
            loaded_machine(16, 16, 80_000),
            fast_limited_thermal(),
            SprintConfig::hpca_parallel(),
        )
        .run();
        assert!(
            report.max_junction_c < 70.0 + 2.0,
            "thermal limit respected: {:.1} C",
            report.max_junction_c
        );
    }

    #[test]
    fn dvfs_sprint_is_slower_than_parallel_but_faster_than_sustained() {
        // Sized so even the boosted single-core run fits inside the
        // (compressed) sprint budget — the "sufficient thermal
        // capacitance" regime of Figure 7's full-PCM bars.
        let work = 4_000;
        let base = SprintSystem::new(
            loaded_machine(16, 16, work),
            fast_thermal(),
            SprintConfig::hpca_sustained(),
        )
        .run();
        let dvfs = SprintSystem::new(
            loaded_machine(16, 16, work),
            fast_thermal(),
            SprintConfig::hpca_dvfs(),
        )
        .run();
        let parallel = SprintSystem::new(
            loaded_machine(16, 16, work),
            fast_thermal(),
            SprintConfig::hpca_parallel(),
        )
        .run();
        let s_dvfs = dvfs.speedup_over(base.completion_s);
        let s_par = parallel.speedup_over(base.completion_s);
        assert!(
            s_dvfs > 1.5 && s_dvfs < 3.2,
            "DVFS sprint ≈ 2.5x on compute-bound work: {s_dvfs:.2}"
        );
        assert!(
            s_par > s_dvfs,
            "parallel {s_par:.2} must beat DVFS {s_dvfs:.2}"
        );
    }

    #[test]
    fn dvfs_costs_much_more_energy() {
        let work = 4_000;
        let base = SprintSystem::new(
            loaded_machine(16, 16, work),
            fast_thermal(),
            SprintConfig::hpca_sustained(),
        )
        .run();
        let dvfs = SprintSystem::new(
            loaded_machine(16, 16, work),
            fast_thermal(),
            SprintConfig::hpca_dvfs(),
        )
        .run();
        let ratio = dvfs.energy_j / base.energy_j;
        assert!(
            ratio > 3.0,
            "quadratic voltage cost should show up: {ratio:.2}"
        );
    }

    #[test]
    fn trace_is_bounded_and_ordered() {
        let report = SprintSystem::new(
            loaded_machine(4, 4, 30_000),
            fast_thermal(),
            SprintConfig::hpca_parallel().with_mode(ExecutionMode::ParallelSprint { cores: 4 }),
        )
        .with_trace_capacity(128)
        .run();
        assert!(report.trace.len() <= 128);
        for w in report.trace.windows(2) {
            assert!(w[1].time_s > w[0].time_s);
            assert!(w[1].instructions >= w[0].instructions);
        }
    }

    #[test]
    fn speedup_over_guards_degenerate_baselines() {
        let report = SprintSystem::new(
            loaded_machine(4, 4, 1_000),
            fast_thermal(),
            SprintConfig::hpca_parallel().with_mode(ExecutionMode::ParallelSprint { cores: 4 }),
        )
        .with_trace_capacity(0)
        .run();
        assert!(report.speedup_over(0.0).is_nan());
        assert!(report.speedup_over(-1.0).is_nan());
        assert!(report.speedup_over(f64::NAN).is_nan());
        let mut degenerate = report.clone();
        degenerate.completion_s = 0.0;
        assert!(degenerate.speedup_over(1.0).is_nan());
    }
}
