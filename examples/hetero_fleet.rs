//! A heterogeneous, degraded rack: competitive duplication with loser
//! cancellation vs bounded retry-in-place.
//!
//! The fleet mixes two 16-core servers (heavier nameplate share and
//! thermal footprint) with two 8-core ones, placed by cheapest
//! headroom. A seeded crash plan kills one big and one little node
//! mid-task, leaving a big/little survivor pair — so duplicate copies
//! keep racing at genuinely different speeds all the way through the
//! drain, and the loser-cancellation path has losers to preempt.
//!
//! The comparison everything below asserts: with a second copy on
//! another node the tail never sees a crash, so duplication beats
//! retry-in-place at the p99; same-window loser cancellation keeps
//! that immunity while clawing back part of duplication's extra feed
//! draw. The event-driven core runs the study and must reproduce the
//! lockstep golden oracle's report digest byte for byte.
//!
//! Run with: `cargo run --release --example hetero_fleet`

use std::time::Instant;

use computational_sprinting::prelude::*;

/// Open-arrival tasks to drain (the reduced-study scale).
const TASKS: usize = 8;
/// Arrival spacing, seconds — sparse, so the duplicate copy rides idle
/// capacity instead of queueing behind live work.
const SPACING_S: f64 = 800e-6;
/// Thermal/electrical time compression (the cluster fixtures').
const COMPRESS: f64 = 3000.0;
/// Run horizon, seconds — room for a crash victim to wait out its
/// backoff and rerun from scratch.
const MAX_TIME_S: f64 = 0.03;

/// Two big + two little servers, interleaved.
fn specs() -> Vec<NodeSpec> {
    let big = MachineConfig::hpca();
    let little = MachineConfig::hpca().with_cores(8);
    vec![
        NodeSpec::standard(big.clone())
            .with_share_weight(1.5)
            .with_thermal_weight(1.25),
        NodeSpec::standard(little.clone())
            .with_share_weight(0.75)
            .with_thermal_weight(0.8),
        NodeSpec::standard(big)
            .with_share_weight(1.5)
            .with_thermal_weight(1.25),
        NodeSpec::standard(little)
            .with_share_weight(0.75)
            .with_thermal_weight(0.8),
    ]
}

/// One big and one little node crash while early arrivals run on them.
fn crash_plan() -> FaultPlan {
    let ev = |window: u64, node: u32| FaultEvent {
        window,
        node,
        kind: FaultKind::NodeCrash,
    };
    FaultPlan::new(vec![ev(700, 0), ev(3100, 1)])
        .with_retries(3, 512)
        .with_response(FaultResponse::Aware)
}

/// The degraded rack under `policy`; everything else is held fixed.
fn build(policy: ClusterPolicy) -> ClusterSession {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 8.0;
    ClusterBuilder::new(GridThermalParams::rack(2, 2).time_scaled(COMPRESS))
        .policy(policy)
        .rack_supply(RackSupplyParams::rack(4).time_scaled(COMPRESS))
        .config(cfg)
        .node_specs(specs())
        .placement(Placement::CheapestHeadroom)
        .tasks(ClusterTask::arrivals(
            WorkloadKind::Sobel,
            InputSize::A,
            16,
            TASKS,
            0.0,
            SPACING_S,
        ))
        .fault_plan(crash_plan())
        .max_time_s(MAX_TIME_S)
        .build()
}

/// Drains one policy on the event-driven core; returns (report, feed
/// draw in joules, wall seconds).
fn run(label: &str, policy: ClusterPolicy) -> (ClusterReport, f64, f64) {
    let mut cluster = EventDrivenCluster::new(build(policy));
    let start = Instant::now();
    let outcome = cluster.run_to_completion();
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(outcome, ClusterOutcome::Drained, "{label}: must drain");
    let report = cluster.report();
    assert!(report.task_conservation_holds(), "{label}: a task was lost");
    assert_eq!(report.completed, TASKS, "{label}: no task may go missing");
    assert!(report.node_crashes > 0, "{label}: the crash plan never bit");
    let energy_j: f64 = report.node_reports.iter().map(|r| r.energy_j).sum();
    println!(
        "  {label:16} p99 {:7.3} ms  feed {:.4} J  ({} requeues, {} losers cancelled, \
         {:.2} s wall)",
        report.p99_latency_s * 1e3,
        energy_j,
        report.requeues,
        report.cancelled_copies,
        wall_s,
    );
    (report, energy_j, wall_s)
}

fn main() {
    println!(
        "heterogeneous degraded rack: 2 big + 2 little servers, {TASKS} sobel bursts \
         {:.0} us apart, two mid-task node crashes",
        SPACING_S * 1e6,
    );
    let (retry, retry_j, _) = run("retry-in-place", ClusterPolicy::greedy_default());
    let (cancel, cancel_j, _) = run("duplicate+cancel", ClusterPolicy::competitive_default());

    // The headline ordering: duplication under faults wins the tail,
    // cancellation actually fired, and the premium is priced honestly.
    assert!(
        retry.requeues > 0,
        "retry-in-place never paid a crash retry"
    );
    assert!(cancel.cancelled_copies > 0, "no loser was ever cancelled");
    assert!(
        cancel.p99_latency_s < retry.p99_latency_s,
        "duplicate+cancel lost the p99 to retry-in-place"
    );
    assert!(
        cancel_j > retry_j,
        "two copies of healthy work cannot draw less feed than one"
    );
    println!(
        "  duplication hides the crash from the tail: p99 {:.3} ms vs {:.3} ms \
         ({:.1}x) at {:+.1}% feed draw",
        cancel.p99_latency_s * 1e3,
        retry.p99_latency_s * 1e3,
        retry.p99_latency_s / cancel.p99_latency_s,
        (cancel_j / retry_j - 1.0) * 100.0,
    );

    // The determinism contract: the event-driven study reproduces the
    // lockstep golden oracle byte for byte — under heterogeneity,
    // duplication, cancellation and the crash plan all at once.
    let mut lockstep = build(ClusterPolicy::competitive_default());
    lockstep.run_to_completion();
    assert_eq!(
        lockstep.report().digest(),
        cancel.digest(),
        "event core diverged from the lockstep oracle"
    );
    println!(
        "  event-driven report digest byte-identical to the lockstep oracle ({:016x})",
        cancel.digest(),
    );
}
