//! Figure 2 generator: the three conceptual execution modes.
//!
//! Runs the same fixed computation under (a) sustained single-core
//! execution, (b) a parallel sprint on a conventional (PCM-free) package,
//! and (c) a parallel sprint on the PCM-augmented package, producing the
//! cores/cumulative-compute/temperature traces of Figure 2.

use serde::{Deserialize, Serialize};
use sprint_archsim::config::MachineConfig;
use sprint_archsim::machine::Machine;
use sprint_archsim::program::SyntheticKernel;
use sprint_thermal::phone::PhoneThermalParams;

use crate::config::{ExecutionMode, SprintConfig};
use crate::system::{RunReport, SprintSystem};

/// The three panels of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConceptualMode {
    /// (a) Sustained single-core execution.
    Sustained,
    /// (b) Sprint on a conventional package (junction capacitance only).
    SprintNoPcm,
    /// (c) Sprint with the PCM-augmented package.
    SprintWithPcm,
}

impl ConceptualMode {
    /// All three panels.
    pub const ALL: [ConceptualMode; 3] = [
        ConceptualMode::Sustained,
        ConceptualMode::SprintNoPcm,
        ConceptualMode::SprintWithPcm,
    ];

    /// Panel label.
    pub fn label(&self) -> &'static str {
        match self {
            ConceptualMode::Sustained => "sustained",
            ConceptualMode::SprintNoPcm => "sprint",
            ConceptualMode::SprintWithPcm => "sprint+pcm",
        }
    }
}

/// Runs one Figure 2 panel. `work_accesses` sizes the fixed computation;
/// `time_compress` scales the thermal model (use ~100 for quick runs).
pub fn run_conceptual(mode: ConceptualMode, work_accesses: u64, time_compress: f64) -> RunReport {
    let cores = 16;
    let mut machine = Machine::new(MachineConfig::hpca().with_cores(cores));
    for t in 0..cores as u64 {
        machine.spawn(Box::new(SyntheticKernel::new(
            24,
            work_accesses / cores as u64,
            (t + 1) << 26,
            0,
        )));
    }
    let (thermal_params, exec) = match mode {
        ConceptualMode::Sustained => (PhoneThermalParams::hpca(), ExecutionMode::Sustained),
        ConceptualMode::SprintNoPcm => (
            PhoneThermalParams::without_pcm(),
            ExecutionMode::ParallelSprint { cores },
        ),
        ConceptualMode::SprintWithPcm => (
            PhoneThermalParams::hpca(),
            ExecutionMode::ParallelSprint { cores },
        ),
    };
    let thermal = thermal_params.time_scaled(time_compress).build();
    let config = SprintConfig::hpca_parallel().with_mode(exec);
    SprintSystem::new(machine, thermal, config)
        .with_trace_capacity(512)
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcm_panel_computes_more_during_sprint_than_no_pcm() {
        let work = 1_200_000;
        let no_pcm = run_conceptual(ConceptualMode::SprintNoPcm, work, 1000.0);
        let with_pcm = run_conceptual(ConceptualMode::SprintWithPcm, work, 1000.0);
        // Both finish, but the PCM panel sustains the sprint longer.
        assert!(no_pcm.finished && with_pcm.finished);
        assert!(
            with_pcm.completion_s < no_pcm.completion_s,
            "PCM sprint {:.4}s should beat PCM-free sprint {:.4}s",
            with_pcm.completion_s,
            no_pcm.completion_s
        );
    }

    #[test]
    fn sustained_panel_is_slowest() {
        let work = 600_000;
        let sustained = run_conceptual(ConceptualMode::Sustained, work, 1000.0);
        let sprint = run_conceptual(ConceptualMode::SprintWithPcm, work, 1000.0);
        assert!(sustained.completion_s > sprint.completion_s * 2.0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            ConceptualMode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 3);
    }
}
