//! Repeated sprints: responsiveness across a *sequence* of user events.
//!
//! "Once sprinting capacity is exhausted, the chip must cool in non-sprint
//! mode before it can sprint again" (Section 3). This example fires a
//! burst of work every few (compressed) seconds, carrying the thermal
//! state and the hybrid supply's charge across bursts: early bursts get
//! the full sprint; a burst arriving before cooldown completes gets only
//! partial capacity and finishes slower.
//!
//! Run with: `cargo run --release --example repeated_bursts`

use computational_sprinting::powersource::HybridSupply;
use computational_sprinting::prelude::*;
use computational_sprinting::thermal::PhoneThermal;

/// Runs one burst against the *current* thermal state, returning the
/// completion time. This drives the machine/thermal coupling manually so
/// the thermal model persists across bursts.
fn run_burst(thermal: &mut PhoneThermal, idle_before_s: f64) -> (f64, f64) {
    // Idle interval before the burst: the chip cools.
    thermal.set_chip_power_w(0.0);
    thermal.advance(idle_before_s);
    let budget_before = thermal.sprint_energy_budget_j();

    let workload = build_workload(WorkloadKind::Feature, InputSize::C);
    let mut machine = Machine::new(MachineConfig::hpca());
    workload.setup(&mut machine, 16);

    // Manual coupling (what SprintSystem does internally), so we can keep
    // the thermal model afterwards.
    let mut controller = computational_sprinting::core::SprintController::new(
        SprintConfig::hpca_parallel(),
        thermal,
        &mut machine,
    );
    let window_ps = 1_000_000;
    let window_s = window_ps as f64 * 1e-12;
    let t0 = machine.time_s();
    loop {
        let report = machine.run_window(window_ps);
        thermal.set_chip_power_w(report.energy_j / window_s);
        thermal.advance(window_s);
        controller.step(
            thermal,
            report.energy_j,
            window_s,
            machine.time_s(),
            &mut machine,
        );
        if report.all_done {
            break;
        }
    }
    (machine.time_s() - t0, budget_before)
}

fn main() {
    // Thermal model compressed 15x (matching the workload scale).
    // Limited design: one burst consumes most of the sprint budget, so the
    // inter-burst gap visibly matters.
    let mut thermal = PhoneThermalParams::limited().time_scaled(15.0).build();
    let mut supply = HybridSupply::phone();

    println!("burst  idle-before  budget-at-start  completion   supply-capacity");
    for (i, idle_s) in [0.0f64, 0.002, 0.002, 0.01, 0.05, 0.2].iter().enumerate() {
        let (completion_s, budget_j) = run_burst(&mut thermal, *idle_s);
        // Electrical side: draw the burst from the hybrid supply, then
        // recharge during the idle gap (time de-compressed for the cap).
        let _ = supply.sprint(16.0, completion_s * 15.0);
        supply.recharge_between_sprints((idle_s * 15.0).max(0.01));
        println!(
            "{i:>5}  {:>8.0} ms  {:>13.3} J  {:>8.2} ms  {:>13.1} J",
            idle_s * 1e3,
            budget_j,
            completion_s * 1e3,
            supply.sprint_capacity_j(),
        );
    }
    println!();
    println!("back-to-back bursts (rows 1-2) start with a depleted budget and run");
    println!("~25% slower; once the gap covers the cooldown (rows 4-5) the PCM");
    println!("refreezes and full capacity returns — the paper's sprint-then-cool cycle.");
}
