//! Determinism pin for the threaded ADI engine: advancing a PCM-free
//! rack grid with 2 or 8 solver threads must reproduce the serial
//! (1-thread) trajectory byte for byte — every cell temperature, the
//! boundary energy ledger, the junction and the per-core peaks. The
//! whole threaded design (fixed `lane_range` partitions, caller-side
//! sink reductions) exists to make this test pass; see the grid module
//! docs' "Batched and threaded sweeps" section.

use sprint_thermal::grid::{GridSolver, GridThermal, GridThermalParams};
use sprint_thermal::pool::SolverPool;
use std::sync::Arc;

/// A bitwise fingerprint of everything the backend reports.
fn fingerprint(g: &GridThermal) -> Vec<u64> {
    let mut out = Vec::new();
    for layer in 0..g.layer_count() {
        for y in 0..g.params().ny {
            for x in 0..g.params().nx {
                out.push(g.cell_temp_c(layer, x, y).to_bits());
            }
        }
    }
    out.push(g.total_stored_enthalpy_j().to_bits());
    out.push(g.boundary_absorbed_j().to_bits());
    out.push(g.junction_temp_c().to_bits());
    out.push(g.hotspot_gradient_k().to_bits());
    for core in 0..g.params().floorplan.cores().len() {
        out.push(g.core_temp_c(core).to_bits());
    }
    out
}

/// Drives a mixed busy/idle power schedule with awkward window sizes
/// and returns the final fingerprint.
fn drive(mut g: GridThermal) -> Vec<u64> {
    let cores = g.params().floorplan.cores().len();
    let mut state = 0x9e37_79b9_7f4a_7c15_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for window in 0..60 {
        for core in 0..cores {
            let u = next();
            let watts = if u < 0.3 { 0.0 } else { 24.0 * u };
            g.set_core_power_w(core, watts);
        }
        let dt = if window % 5 == 0 { 0.08 } else { 0.004 };
        g.advance(dt);
    }
    fingerprint(&g)
}

/// Uneven cell dimensions so every lane partition hits a remainder
/// (13 rows / 10 columns / 130 stacks never split evenly at 2, 3, 4
/// or 8 lanes).
fn uneven_rack() -> GridThermalParams {
    GridThermalParams::rack(3, 2).with_grid(13, 10)
}

#[test]
fn threaded_adi_is_byte_identical_at_1_2_and_8_lanes() {
    // The schedule must actually exercise the implicit engine, not the
    // explicit fallback.
    assert_eq!(
        uneven_rack().build().effective_solver(0.004),
        GridSolver::Adi
    );
    let serial = drive(uneven_rack().with_solver_threads(1).build());
    for threads in [2usize, 8] {
        let threaded = drive(uneven_rack().with_solver_threads(threads).build());
        assert_eq!(serial, threaded, "{threads} lanes diverged from serial");
    }
}

#[test]
fn a_shared_installed_pool_is_byte_identical_too() {
    // The cross-rack seam: one pool (sized for the widest rack of a
    // shard) services grids configured for fewer lanes. The pool's
    // lane count, not `solver_threads`, decides the partition — and
    // either way the bytes must match serial.
    let serial = drive(uneven_rack().build());
    let pool = Arc::new(SolverPool::new(4));
    for threads in [2usize, 3] {
        let mut g = uneven_rack().with_solver_threads(threads).build();
        g.install_solver_pool(Arc::clone(&pool));
        let shared = drive(g);
        assert_eq!(
            serial, shared,
            "shared 4-lane pool diverged (solver_threads = {threads})"
        );
    }
}

#[test]
fn a_pcm_grid_ignores_the_thread_knob_and_stays_serial_batched() {
    // Threading covers the PCM-free linear engine; a PCM grid must
    // produce its usual (serial, batched-general) trajectory no matter
    // the configured lane count.
    let params = || {
        GridThermalParams::hpca_like()
            .with_grid(6, 5)
            .with_solver(GridSolver::Adi)
    };
    let serial = drive(params().build());
    let threaded = drive(params().with_solver_threads(8).build());
    assert_eq!(serial, threaded);
}
