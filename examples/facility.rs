//! Facility scale: global sprint rationing vs the oblivious split.
//!
//! Four 16-server racks (the `rack_power` configuration) stand in one
//! row behind a building feed that cannot carry every rack's nameplate
//! at once. Each rack serves its own diurnal open-arrival stream, with
//! phases rotated so rack peaks do not coincide. The same tight feed
//! runs under two facility tiers:
//!
//! * **oblivious** — the cap is split equally at commissioning time
//!   and never moved: every rack owns `cap / N` watts through its peak
//!   and its trough alike;
//! * **global** — a settlement tier re-divides the cap every epoch by
//!   rack demand, dealing the pool above the per-rack floors in whole
//!   sprint-slot quanta, so the watts idle in one rack's trough land
//!   as *admissible sprints* on the rack riding its peak.
//!
//! ```text
//! cargo run --release --example facility
//! ```
//!
//! Scale knobs (CI runs the tiny default):
//! `SPRINT_FACILITY_RACKS`, `SPRINT_FACILITY_TASKS`,
//! `SPRINT_FACILITY_SHARE_W` (per-rack watts; nameplate is 120).

use computational_sprinting::prelude::*;
use sprint_thermal::grid::GridThermalParams;

/// Thermal/electrical time compression (so the example runs in seconds).
const COMPRESS: f64 = 6000.0;
/// Per-rack guaranteed floor under rationing, watts (carries sustained
/// load, never a sprint).
const FLOOR_W: f64 = 20.0;
/// Flex-pool quantum, watts — the per-sprint booking of
/// `PowerPolicy::rationed_default`, so each dealt quantum buys exactly
/// one admissible sprint.
const SLOT_W: f64 = 18.0;
/// Mean per-rack arrival rate, Hz.
const RATE_HZ: f64 = 1_800.0;

fn knob(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

// This run mirrors `sprint_bench::figs_facility::study_facility`
// (`repro facility`) — the example cannot depend on the bench crate,
// so each copy asserts the study's claims independently: retuning one
// without the other fails either this example (CI example-smoke) or
// the figure's own assertions, not silently.
fn run(
    label: &str,
    policy: FacilityPolicy,
    share_w: f64,
    racks: usize,
    tasks: usize,
) -> FacilityReport {
    let mut cfg = SprintConfig::hpca_parallel();
    // Nameplate thermal credit and the coarse co-simulation window the
    // facility studies run at.
    cfg.tdp_w = 8.0;
    cfg.sample_window_ps = 20_000_000;
    let facility = FacilityBuilder::new(racks)
        .rack_thermal(GridThermalParams::rack(4, 4).time_scaled(COMPRESS))
        .rack_supply(RackSupplyParams::rack(16).time_scaled(COMPRESS))
        .config(cfg)
        .policy(ClusterPolicy::GreedyHeadroom {
            admit_headroom_k: 15.0,
            shed_headroom_k: 4.0,
            min_sprinting: 1,
            // Finite, but several settlement epochs long: headroom the
            // global tier re-deals mid-wait still rescues a deferred
            // task.
            defer_s: 2e-3,
        })
        .power_policy(PowerPolicy::rationed_default())
        .row(RowParams {
            racks_per_row: 4,
            recirc_k_per_w: 0.02,
            crac_capacity_w: 240.0,
            max_inlet_c: 45.0,
        })
        .facility_policy(policy)
        .facility_cap_w(share_w * racks as f64)
        .epoch_windows(16)
        .max_time_s(60.0)
        .traffic({
            let mut traffic = TrafficParams::frontend(2012, tasks, RATE_HZ);
            // A/B sizes only: a C/D outlier pinned sustained on a
            // floor-rationed rack is a different study's tail.
            traffic.size_weights = [0.95, 0.05, 0.0, 0.0];
            traffic
        })
        .build();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let report = facility.run(threads);
    assert!(report.all_drained, "{label}: every rack must drain");
    assert_eq!(report.completed, tasks, "{label}: no task may go missing");
    println!(
        "{label:10} mean {:6.2} ms | p95 {:6.2} ms | p99 {:6.2} ms | sprints {:4} | \
         peak inlet {:.1} C",
        report.mean_latency_s * 1e3,
        report.p95_latency_s * 1e3,
        report.p99_latency_s * 1e3,
        report
            .rack_reports
            .iter()
            .map(|r| r.admitted_sprints)
            .sum::<usize>(),
        report.peak_inlet_c,
    );
    report
}

fn main() {
    let racks = knob("SPRINT_FACILITY_RACKS", 4);
    let tasks = knob("SPRINT_FACILITY_TASKS", 400);
    let share_w = knob("SPRINT_FACILITY_SHARE_W", 25) as f64;
    println!(
        "== {racks} racks x 16 servers, {tasks} tasks at {RATE_HZ:.0} Hz/rack, \
         {share_w:.0} W/rack feed (nameplate 120 W) ==\n"
    );
    let oblivious = run("oblivious", FacilityPolicy::PerRack, share_w, racks, tasks);
    let global = run(
        "global",
        FacilityPolicy::GlobalRationed {
            floor_w: FLOOR_W,
            slot_w: SLOT_W,
        },
        share_w,
        racks,
        tasks,
    );

    println!();
    println!(
        "the oblivious split pins every rack at {share_w:.0} W through peak and trough:\n\
         a bursting rack strands watts it cannot use as whole sprint slots."
    );
    println!(
        "global rationing deals the same budget where the backlog is, slot by slot:\n\
         p99 {:.2} ms vs {:.2} ms ({:.1}x), mean {:.2} ms vs {:.2} ms.",
        global.p99_latency_s * 1e3,
        oblivious.p99_latency_s * 1e3,
        oblivious.p99_latency_s / global.p99_latency_s,
        global.mean_latency_s * 1e3,
        oblivious.mean_latency_s * 1e3,
    );
    // The acceptance claims, kept honest by the example-smoke CI job.
    let sprints = |r: &FacilityReport| {
        r.rack_reports
            .iter()
            .map(|c| c.admitted_sprints)
            .sum::<usize>()
    };
    assert!(
        sprints(&global) > sprints(&oblivious),
        "slot dealing must convert the same watts into more sprints: {} vs {}",
        sprints(&global),
        sprints(&oblivious)
    );
    assert!(
        global.mean_latency_s < oblivious.mean_latency_s,
        "global rationing must win on mean latency: {:.5} vs {:.5}",
        global.mean_latency_s,
        oblivious.mean_latency_s
    );
    assert!(
        global.p99_latency_s <= oblivious.p99_latency_s,
        "global rationing must not lose the tail: {:.5} vs {:.5}",
        global.p99_latency_s,
        oblivious.p99_latency_s
    );
}
