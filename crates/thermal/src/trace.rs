//! Time-series recording for thermal transients.

use serde::{Deserialize, Serialize};

use crate::phone::PhoneThermal;

/// One sampled point of a phone thermal transient.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Simulation time, seconds.
    pub time_s: f64,
    /// Junction temperature, Celsius.
    pub junction_c: f64,
    /// PCM temperature, Celsius (junction temperature when no PCM).
    pub pcm_c: f64,
    /// Case temperature, Celsius.
    pub case_c: f64,
    /// PCM melt fraction in `[0, 1]`.
    pub melt_fraction: f64,
    /// Chip power at the sample instant, watts.
    pub power_w: f64,
}

/// A recorded thermal time series.
///
/// # Examples
///
/// ```
/// use sprint_thermal::phone::PhoneThermalParams;
/// use sprint_thermal::trace::Trace;
///
/// let mut phone = PhoneThermalParams::hpca().build();
/// phone.set_chip_power_w(16.0);
/// let mut trace = Trace::new();
/// for _ in 0..10 {
///     phone.advance(0.01);
///     trace.sample(&phone);
/// }
/// assert_eq!(trace.len(), 10);
/// assert!(trace.max_junction_c() > 25.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    points: Vec<TracePoint>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the model's current state.
    pub fn sample(&mut self, phone: &PhoneThermal) {
        let junction = phone.junction();
        let case = phone.case();
        let net = phone.network();
        self.points.push(TracePoint {
            time_s: phone.time_s(),
            junction_c: phone.junction_temp_c(),
            pcm_c: phone.pcm_temp_c(),
            case_c: net.temperature_c(case),
            melt_fraction: phone.melt_fraction(),
            power_w: net.power(junction),
        });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The recorded samples in time order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Iterates over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, TracePoint> {
        self.points.iter()
    }

    /// Maximum junction temperature observed, Celsius.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn max_junction_c(&self) -> f64 {
        assert!(!self.points.is_empty(), "trace is empty");
        self.points
            .iter()
            .map(|p| p.junction_c)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Time span covered by the trace, seconds (zero when fewer than two
    /// samples exist).
    pub fn span_s(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => b.time_s - a.time_s,
            _ => 0.0,
        }
    }

    /// Resamples the trace at up to `n` evenly spaced points (for compact
    /// figure output). Returns all points when `n >= len`.
    pub fn downsample(&self, n: usize) -> Vec<TracePoint> {
        assert!(n > 0, "n must be positive");
        if self.points.len() <= n {
            return self.points.clone();
        }
        let step = (self.points.len() - 1) as f64 / (n - 1) as f64;
        (0..n)
            .map(|i| self.points[(i as f64 * step).round() as usize])
            .collect()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TracePoint;
    type IntoIter = std::slice::Iter<'a, TracePoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phone::PhoneThermalParams;

    fn short_trace(n: usize) -> Trace {
        let mut phone = PhoneThermalParams::hpca().build();
        phone.set_chip_power_w(16.0);
        let mut trace = Trace::new();
        for _ in 0..n {
            phone.advance(0.01);
            trace.sample(&phone);
        }
        trace
    }

    #[test]
    fn samples_are_time_ordered() {
        let trace = short_trace(20);
        for w in trace.points().windows(2) {
            assert!(w[1].time_s > w[0].time_s);
        }
    }

    #[test]
    fn downsample_preserves_endpoints() {
        let trace = short_trace(50);
        let ds = trace.downsample(5);
        assert_eq!(ds.len(), 5);
        assert_eq!(
            ds.first().unwrap().time_s,
            trace.points().first().unwrap().time_s
        );
        assert_eq!(
            ds.last().unwrap().time_s,
            trace.points().last().unwrap().time_s
        );
    }

    #[test]
    fn downsample_with_large_n_returns_all() {
        let trace = short_trace(5);
        assert_eq!(trace.downsample(100).len(), 5);
    }

    #[test]
    fn span_is_consistent() {
        let trace = short_trace(10);
        assert!((trace.span_s() - 0.09).abs() < 1e-9);
    }
}
