//! OpenMP-style static work partitioning.

use std::ops::Range;

/// Splits `total` items across `threads` workers; returns worker `tid`'s
/// contiguous range. Remainder items go to the lowest-numbered workers,
/// so ranges differ in size by at most one.
///
/// # Examples
///
/// ```
/// use sprint_workloads::partition::chunk_range;
///
/// assert_eq!(chunk_range(10, 3, 0), 0..4);
/// assert_eq!(chunk_range(10, 3, 1), 4..7);
/// assert_eq!(chunk_range(10, 3, 2), 7..10);
/// ```
///
/// # Panics
///
/// Panics if `tid >= threads` or `threads == 0`.
pub fn chunk_range(total: usize, threads: usize, tid: usize) -> Range<usize> {
    assert!(threads > 0, "at least one thread");
    assert!(tid < threads, "tid out of range");
    let base = total / threads;
    let extra = total % threads;
    let start = tid * base + tid.min(extra);
    let len = base + usize::from(tid < extra);
    start..start + len
}

/// Iterator over fixed-size blocks of a range (the granularity at which
/// kernels emit operation batches).
#[derive(Debug, Clone)]
pub struct Blocks {
    next: usize,
    end: usize,
    block: usize,
}

impl Blocks {
    /// Blocks of `block` items covering `range`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero.
    pub fn new(range: Range<usize>, block: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        Self {
            next: range.start,
            end: range.end,
            block,
        }
    }

    /// Number of blocks remaining.
    pub fn remaining(&self) -> usize {
        (self.end - self.next).div_ceil(self.block)
    }
}

impl Iterator for Blocks {
    type Item = Range<usize>;

    fn next(&mut self) -> Option<Range<usize>> {
        if self.next >= self.end {
            return None;
        }
        let start = self.next;
        let end = (start + self.block).min(self.end);
        self.next = end;
        Some(start..end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_everything_exactly_once() {
        for total in [0usize, 1, 7, 64, 1000] {
            for threads in [1usize, 2, 3, 16] {
                let mut covered = vec![false; total];
                for t in 0..threads {
                    for i in chunk_range(total, threads, t) {
                        assert!(!covered[i], "item {i} covered twice");
                        covered[i] = true;
                    }
                }
                assert!(
                    covered.iter().all(|&c| c),
                    "total={total} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn ranges_are_balanced() {
        for t in 0..7 {
            let r = chunk_range(100, 7, t);
            assert!(r.len() == 14 || r.len() == 15);
        }
    }

    #[test]
    fn blocks_cover_range() {
        let mut items = Vec::new();
        for b in Blocks::new(3..20, 5) {
            items.extend(b);
        }
        assert_eq!(items, (3..20).collect::<Vec<_>>());
    }

    #[test]
    fn blocks_remaining_counts_down() {
        let mut blocks = Blocks::new(0..10, 4);
        assert_eq!(blocks.remaining(), 3);
        blocks.next();
        assert_eq!(blocks.remaining(), 2);
    }

    #[test]
    #[should_panic(expected = "tid out of range")]
    fn bad_tid_rejected() {
        let _ = chunk_range(10, 2, 5);
    }
}
