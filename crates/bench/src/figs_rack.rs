//! Rack figure: cluster-level sprint admission on a shared-thermal
//! 16-server rack (Porto et al.'s "fast, but not so furious" regime).
//!
//! Four policies run the same batch of tasks on the same 4x4-server
//! rack (a 32x32 ADI grid — the resolution the ADI solver was built
//! for):
//!
//! * **no-sprint** — every task runs sustained (one core);
//! * **all-sprint** — every task sprints immediately: the nameplate-
//!   calibrated node governors pile into the shared headroom, the rack
//!   pins at the thermal limit and the hardware failsafes fire — the
//!   "furious" collapse;
//! * **admission** — greedy-headroom admission with sprint-or-defer:
//!   tasks wait (briefly) for headroom and then sprint on a full
//!   budget, with hottest-first shedding as the emergency backstop;
//! * **round-robin** — a fixed concurrency cap granted in arrival
//!   order, trading some throughput for a much cooler rack.
//!
//! The companion power figure ([`fig_rack_power`], `repro rack_power`)
//! puts the same rack behind a shared PDU feed that cannot carry
//! all-node sprinting and compares power-oblivious against power-aware
//! admission on an open-arrival trickle: the electrical analogue of
//! the thermal collapse above, measured in latency and brownout
//! casualties instead of degrees.

use sprint_cluster::prelude::*;
use sprint_core::config::SprintConfig;
use sprint_core::controller::ControllerEvent;
use sprint_thermal::grid::GridThermalParams;
use sprint_workloads::suite::{InputSize, WorkloadKind};

use crate::output::{Csv, TextTable};

/// Thermal time compression for the rack figure.
pub const RACK_COMPRESS: f64 = 6000.0;
/// Tasks in the batch (6 waves over 16 nodes).
pub const RACK_TASKS: usize = 96;
/// Rack edge in servers (16 nodes, 32x32 grid cells).
pub const RACK_EDGE: usize = 4;

/// One policy's cluster run.
pub struct RackRow {
    /// Policy label.
    pub label: &'static str,
    /// Cluster report.
    pub report: ClusterReport,
    /// Hardware failsafe engagements across all nodes.
    pub failsafes: usize,
}

/// Runs the batch under one policy on the standard figure rack.
pub fn run_rack_policy(label: &'static str, policy: ClusterPolicy, tasks: usize) -> RackRow {
    let mut cfg = SprintConfig::hpca_parallel();
    // Nameplate credit: the rack preset sustains ~8 W per node, and
    // each node's governor assumes its share — valid only while few
    // nodes sprint, which is exactly the blindness admission fixes.
    cfg.tdp_w = 8.0;
    let mut cluster = ClusterBuilder::new(
        GridThermalParams::rack(RACK_EDGE, RACK_EDGE).time_scaled(RACK_COMPRESS),
    )
    .policy(policy)
    .config(cfg)
    .tasks(ClusterTask::batch(
        WorkloadKind::Sobel,
        InputSize::A,
        16,
        tasks,
    ))
    .trace_capacity(0)
    .build();
    // A truncated run would make the slow policy look *faster* (only
    // the completed tasks enter the makespan), so fail loudly instead
    // of shipping a silently wrong comparison.
    assert_eq!(
        cluster.run_to_completion(),
        ClusterOutcome::Drained,
        "{label}: the rack figure queue must drain within the time limit"
    );
    let report = cluster.report();
    let failsafes = report
        .node_reports
        .iter()
        .flat_map(|n| n.events.iter())
        .filter(|e| matches!(e, ControllerEvent::FailsafeThrottled { .. }))
        .count();
    RackRow {
        label,
        report,
        failsafes,
    }
}

/// The rack figure: four policies, one batch, one shared rack.
pub fn fig_rack() -> String {
    let rows = [
        run_rack_policy("no-sprint", ClusterPolicy::NoSprint, RACK_TASKS),
        run_rack_policy("all-sprint", ClusterPolicy::AllSprint, RACK_TASKS),
        run_rack_policy("admission", ClusterPolicy::greedy_default(), RACK_TASKS),
        run_rack_policy(
            "round-robin-4",
            ClusterPolicy::RoundRobin { max_sprinting: 4 },
            RACK_TASKS,
        ),
    ];
    let mut out = format!(
        "Rack-level sprinting — {} sobel bursts on a {}x{} server rack \
         (32x32 ADI grid, shared plenum)\n",
        RACK_TASKS, RACK_EDGE, RACK_EDGE
    );
    let mut table = TextTable::new();
    table.row(&[
        &"policy",
        &"makespan ms",
        &"mean latency ms",
        &"peak rack C",
        &"sprints",
        &"sheds",
        &"failsafes",
    ]);
    let mut csv = Csv::new(
        "fig_rack",
        &[
            "policy",
            "makespan_ms",
            "mean_latency_ms",
            "max_latency_ms",
            "peak_junction_c",
            "admitted_sprints",
            "denied_sprints",
            "sheds",
            "failsafes",
        ],
    );
    for r in &rows {
        table.row(&[
            &r.label,
            &format!("{:.2}", r.report.makespan_s * 1e3),
            &format!("{:.2}", r.report.mean_latency_s * 1e3),
            &format!("{:.1}", r.report.peak_junction_c),
            &r.report.admitted_sprints,
            &r.report.sheds,
            &r.failsafes,
        ]);
        csv.row(&[
            &r.label,
            &format!("{:.3}", r.report.makespan_s * 1e3),
            &format!("{:.3}", r.report.mean_latency_s * 1e3),
            &format!("{:.3}", r.report.max_latency_s * 1e3),
            &format!("{:.2}", r.report.peak_junction_c),
            &r.report.admitted_sprints,
            &r.report.denied_sprints,
            &r.report.sheds,
            &r.failsafes,
        ]);
    }
    out.push_str(&table.render());
    let (ns, als, adm) = (&rows[0].report, &rows[1].report, &rows[2].report);
    out.push_str(&format!(
        "admission-controlled sprinting drains the queue {:.1}x faster than the\n\
         no-sprint rack and {:.1}x faster than unmanaged all-sprint, whose {}\n\
         failsafe engagements at {:.1} C are the thermal collapse: nameplate-\n\
         calibrated node governors cannot see shared headroom, so rationing\n\
         (sprint-or-defer plus hottest-first shedding) beats sprinting harder.\n",
        ns.makespan_s / adm.makespan_s,
        als.makespan_s / adm.makespan_s,
        rows[1].failsafes,
        als.peak_junction_c,
    ));
    out.push_str(&format!("wrote {}\n", csv.finish().display()));
    out
}

/// Open-arrival task count for the power figure.
pub const POWER_TASKS: usize = 96;
/// Arrival spacing for the power figure, seconds.
pub const POWER_SPACING_S: f64 = 20e-6;

/// One power policy's open-arrival run on the electrically capped rack.
pub struct RackPowerRow {
    /// Policy label.
    pub label: &'static str,
    /// Cluster report.
    pub report: ClusterReport,
}

/// Builds the power-study cluster: the standard figure rack behind the
/// shared 120 W feed (the `RackSupplyParams::rack` design point, which
/// carries ~6 of the 16 nodes sprinting), fed `tasks` open arrivals.
/// One configuration serves both the `rack_power` figure and the
/// `perfbench` rack-power point, so the perf history always measures
/// what the figure publishes. Thermal admission is fixed; only the
/// power policy varies.
pub fn power_study_cluster(power: PowerPolicy, tasks: usize) -> ClusterSession {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 8.0;
    ClusterBuilder::new(GridThermalParams::rack(RACK_EDGE, RACK_EDGE).time_scaled(RACK_COMPRESS))
        .policy(ClusterPolicy::greedy_default())
        .power_policy(power)
        .rack_supply(RackSupplyParams::rack(RACK_EDGE * RACK_EDGE).time_scaled(RACK_COMPRESS))
        .config(cfg)
        .tasks(ClusterTask::arrivals(
            WorkloadKind::Sobel,
            InputSize::A,
            16,
            tasks,
            0.0,
            POWER_SPACING_S,
        ))
        .trace_capacity(0)
        .build()
}

/// Runs the open-arrival study under one power policy (see
/// [`power_study_cluster`]).
pub fn run_rack_power_policy(
    label: &'static str,
    power: PowerPolicy,
    tasks: usize,
) -> RackPowerRow {
    let mut cluster = power_study_cluster(power, tasks);
    assert_eq!(
        cluster.run_to_completion(),
        ClusterOutcome::Drained,
        "{label}: the power figure queue must drain within the time limit"
    );
    RackPowerRow {
        label,
        report: cluster.report(),
    }
}

/// The rack power figure: the same open-arrival trickle under
/// power-oblivious and power-aware admission on one electrically
/// capped rack.
pub fn fig_rack_power() -> String {
    let rows = [
        run_rack_power_policy("power-oblivious", PowerPolicy::Oblivious, POWER_TASKS),
        run_rack_power_policy("power-aware", PowerPolicy::rationed_default(), POWER_TASKS),
    ];
    let mut out = format!(
        "Rack power delivery — {} open-arrival sobel bursts ({} us spacing) on a \
         {}x{} rack behind a shared {:.0} W feed\n",
        POWER_TASKS,
        POWER_SPACING_S * 1e6,
        RACK_EDGE,
        RACK_EDGE,
        RackSupplyParams::rack(RACK_EDGE * RACK_EDGE).cap_w,
    );
    let mut table = TextTable::new();
    table.row(&[
        &"policy",
        &"mean latency ms",
        &"p95 ms",
        &"max ms",
        &"sprints",
        &"supply aborts",
        &"power sheds",
    ]);
    let mut csv = Csv::new(
        "fig_rack_power",
        &[
            "policy",
            "mean_latency_ms",
            "p95_latency_ms",
            "max_latency_ms",
            "makespan_ms",
            "admitted_sprints",
            "denied_sprints",
            "supply_aborts",
            "power_sheds",
            "sheds",
        ],
    );
    for r in &rows {
        table.row(&[
            &r.label,
            &format!("{:.2}", r.report.mean_latency_s * 1e3),
            &format!("{:.2}", r.report.p95_latency_s * 1e3),
            &format!("{:.2}", r.report.max_latency_s * 1e3),
            &r.report.admitted_sprints,
            &r.report.supply_aborts,
            &r.report.power_sheds,
        ]);
        csv.row(&[
            &r.label,
            &format!("{:.3}", r.report.mean_latency_s * 1e3),
            &format!("{:.3}", r.report.p95_latency_s * 1e3),
            &format!("{:.3}", r.report.max_latency_s * 1e3),
            &format!("{:.3}", r.report.makespan_s * 1e3),
            &r.report.admitted_sprints,
            &r.report.denied_sprints,
            &r.report.supply_aborts,
            &r.report.power_sheds,
            &r.report.sheds,
        ]);
    }
    out.push_str(&table.render());
    let (obl, aware) = (&rows[0].report, &rows[1].report);
    // The narrative below states these unconditionally, so refuse to
    // print a figure whose claims stopped being true (the example
    // asserts the same invariants on its own copy of the study).
    assert_eq!(
        aware.supply_aborts, 0,
        "power-aware admission must never let a sprint brown out"
    );
    assert!(
        obl.supply_aborts > 0 && aware.mean_latency_s < obl.mean_latency_s,
        "the power figure's ordering no longer holds: oblivious {} aborts, \
         mean {:.5} s vs aware {:.5} s",
        obl.supply_aborts,
        obl.mean_latency_s,
        aware.mean_latency_s
    );
    out.push_str(&format!(
        "the power-oblivious rack sprints into the shared feed until the reserve\n\
         empties: {} sprints die electrically ({} brownout casualties crawl home on\n\
         one core). power-aware admission books each sprint against the feed and\n\
         defers what the bus cannot carry: zero electrical casualties and {:.2}x\n\
         lower mean latency ({:.2} vs {:.2} ms) from the *same* thermal policy.\n",
        obl.supply_aborts,
        obl.supply_aborts,
        obl.mean_latency_s / aware.mean_latency_s,
        aware.mean_latency_s * 1e3,
        obl.mean_latency_s * 1e3,
    ));
    out.push_str(&format!("wrote {}\n", csv.finish().display()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced-scale sanity check of the figure machinery (the full
    /// ordering claims are pinned by `sprint-cluster`'s own
    /// integration tests at 3x3 scale).
    #[test]
    fn reduced_rack_figure_orders_policies() {
        let no_sprint = run_rack_policy("no-sprint", ClusterPolicy::NoSprint, 8);
        let admission = run_rack_policy("admission", ClusterPolicy::greedy_default(), 8);
        assert_eq!(no_sprint.report.completed, 8);
        assert_eq!(admission.report.completed, 8);
        assert!(
            admission.report.makespan_s < no_sprint.report.makespan_s * 0.5,
            "admission {:.5} vs no-sprint {:.5}",
            admission.report.makespan_s,
            no_sprint.report.makespan_s
        );
        assert_eq!(no_sprint.failsafes, 0);
    }

    /// Reduced-scale sanity check of the power figure machinery (the
    /// full brownout-vs-rationing ordering is pinned by
    /// `sprint-cluster`'s `power_rack` integration tests).
    #[test]
    fn reduced_rack_power_figure_runs_clean_under_rationing() {
        let aware = run_rack_power_policy("power-aware", PowerPolicy::rationed_default(), 8);
        assert_eq!(aware.report.completed, 8);
        assert_eq!(aware.report.supply_aborts, 0);
        assert!(aware.report.p95_latency_s >= aware.report.mean_latency_s);
        assert!(aware.report.p95_latency_s <= aware.report.max_latency_s);
    }
}
