//! `sobel` — edge detection filter, parallelized OpenMP-style over rows.
//!
//! The classic 3x3 Sobel operator: per pixel, two convolutions (Gx, Gy)
//! and a magnitude. Compute-dense relative to its byte traffic (8-bit
//! pixels), so it scales near-linearly to high core counts — the paper's
//! Figure 10 shows sobel scaling "all the way up to 64 cores".

use std::sync::Arc;

use sprint_archsim::isa::Op;
use sprint_archsim::machine::Machine;
use sprint_archsim::memmap::{AddressSpace, Region};
use sprint_archsim::program::{Inbox, Kernel, KernelStatus, ThreadId};

use crate::data::{textured_image, GrayImage};
use crate::emit;
use crate::partition::chunk_range;
use crate::suite::{InputSize, Workload};

/// Computes the Sobel gradient magnitude image (saturating u8).
pub fn sobel_native(img: &GrayImage) -> Vec<u8> {
    let (w, h) = (img.width, img.height);
    let mut out = vec![0u8; w * h];
    for y in 1..h.saturating_sub(1) {
        for x in 1..w.saturating_sub(1) {
            let p = |dx: isize, dy: isize| -> i32 {
                i32::from(img.at((x as isize + dx) as usize, (y as isize + dy) as usize))
            };
            let gx = -p(-1, -1) - 2 * p(-1, 0) - p(-1, 1) + p(1, -1) + 2 * p(1, 0) + p(1, 1);
            let gy = -p(-1, -1) - 2 * p(0, -1) - p(1, -1) + p(-1, 1) + 2 * p(0, 1) + p(1, 1);
            let mag = ((gx * gx + gy * gy) as f64).sqrt() as i32;
            out[y * w + x] = mag.min(255) as u8;
        }
    }
    out
}

struct SobelData {
    img: Arc<GrayImage>,
    input: Region,
    output: Region,
    threads_hint: std::sync::atomic::AtomicUsize,
}

/// The sobel workload: image + simulated placement.
pub struct SobelWorkload {
    data: Arc<SobelData>,
    checksum: u64,
}

impl std::fmt::Debug for SobelWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SobelWorkload")
            .field("width", &self.data.img.width)
            .field("height", &self.data.img.height)
            .finish_non_exhaustive()
    }
}

impl SobelWorkload {
    /// Builds the workload at a standard input size.
    pub fn new(size: InputSize) -> Self {
        // A = 0.5 MP, scaling area by 2x per class up to 4 MP (Figure 8
        // sweeps further via `with_dims`).
        let scale = (size.scale() as f64).sqrt();
        let w = (800.0 * scale) as usize;
        let h = (640.0 * scale) as usize;
        Self::with_dims(w, h, 0xE0_5E1)
    }

    /// Builds the workload for an arbitrary image size (Figure 8's
    /// megapixel sweep).
    pub fn with_dims(width: usize, height: usize, seed: u64) -> Self {
        let img = Arc::new(textured_image(width, height, seed));
        let native = sobel_native(&img);
        let checksum = native.iter().map(|&v| u64::from(v)).sum();
        let mut mem = AddressSpace::new();
        let input = mem.alloc_bytes((width * height) as u64);
        let output = mem.alloc_bytes((width * height) as u64);
        Self {
            data: Arc::new(SobelData {
                img,
                input,
                output,
                threads_hint: std::sync::atomic::AtomicUsize::new(1),
            }),
            checksum,
        }
    }

    /// Checksum of the native result (regression/verification hook).
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Image megapixels.
    pub fn megapixels(&self) -> f64 {
        (self.data.img.width * self.data.img.height) as f64 / 1e6
    }
}

impl Workload for SobelWorkload {
    fn name(&self) -> &'static str {
        "sobel"
    }

    fn setup(&self, machine: &mut Machine, threads: usize) {
        self.data
            .threads_hint
            .store(threads, std::sync::atomic::Ordering::Relaxed);
        for t in 0..threads {
            machine.spawn(Box::new(SobelKernel::new(self.data.clone(), t, threads)));
        }
    }

    fn work_units(&self) -> u64 {
        (self.data.img.width * self.data.img.height) as u64
    }
}

/// Per-pixel instruction mix: the two 3x3 convolutions and the magnitude.
const FP_PER_PX: u64 = 8;
const INT_PER_PX: u64 = 6;
const BR_PER_PX: u64 = 2;

struct SobelKernel {
    data: Arc<SobelData>,
    rows: std::ops::Range<usize>,
    y: usize,
    x: usize,
    checksum: u64,
    finished: bool,
}

impl SobelKernel {
    fn new(data: Arc<SobelData>, tid: usize, threads: usize) -> Self {
        let h = data.img.height;
        let inner = h.saturating_sub(2);
        let rows = chunk_range(inner, threads, tid);
        let rows = rows.start + 1..rows.end + 1;
        Self {
            data,
            y: rows.start,
            rows,
            x: 1,
            checksum: 0,
            finished: false,
        }
    }
}

impl Kernel for SobelKernel {
    fn step(&mut self, _tid: ThreadId, _inbox: &mut Inbox, out: &mut Vec<Op>) -> KernelStatus {
        if self.finished {
            return KernelStatus::Done;
        }
        if self.y >= self.rows.end {
            // Join the end-of-kernel barrier once.
            out.push(Op::Barrier);
            self.finished = true;
            return KernelStatus::Done;
        }
        let img = &self.data.img;
        let w = img.width;
        // Process up to 4 blocks of 64 output pixels per step.
        for _ in 0..4 {
            if self.y >= self.rows.end {
                break;
            }
            let x0 = self.x;
            let x1 = (x0 + 64).min(w - 1);
            let px = (x1 - x0) as u64;
            // Memory: the three input rows' spans plus the output span.
            for dy in [-1i64, 0, 1] {
                let row = (self.y as i64 + dy) as u64;
                emit::load_span(out, self.data.input, row * w as u64 + x0 as u64 - 1, px + 2);
            }
            emit::store_span(out, self.data.output, (self.y * w + x0) as u64, px);
            emit::element_mix(out, px, FP_PER_PX, INT_PER_PX, BR_PER_PX);
            // Native computation for the block (keeps the trace honest:
            // the same arithmetic a real kernel performs).
            for x in x0..x1 {
                let p = |dx: isize, dy: isize| -> i32 {
                    i32::from(img.at_clamped(x as isize + dx, self.y as isize + dy))
                };
                let gx = -p(-1, -1) - 2 * p(-1, 0) - p(-1, 1) + p(1, -1) + 2 * p(1, 0) + p(1, 1);
                let gy = -p(-1, -1) - 2 * p(0, -1) - p(1, -1) + p(-1, 1) + 2 * p(0, 1) + p(1, 1);
                let mag = ((gx * gx + gy * gy) as f64).sqrt() as i32;
                self.checksum += mag.min(255) as u64;
            }
            self.x = x1;
            if self.x >= w - 1 {
                self.x = 1;
                self.y += 1;
            }
        }
        KernelStatus::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_archsim::config::MachineConfig;

    #[test]
    fn native_sobel_finds_rectangle_edges() {
        // A flat image with one bright rectangle: edges exactly at the
        // rectangle border.
        let mut img = GrayImage {
            width: 32,
            height: 32,
            pixels: vec![10; 32 * 32],
        };
        for y in 8..16 {
            for x in 8..24 {
                img.pixels[y * 32 + x] = 200;
            }
        }
        let out = sobel_native(&img);
        assert!(out[9 * 32 + 8] > 100, "left edge must respond");
        assert_eq!(out[12 * 32 + 12], 0, "interior is flat");
        assert_eq!(out[2 * 32 + 2], 0, "background is flat");
    }

    #[test]
    fn workload_runs_and_covers_all_pixels() {
        let w = SobelWorkload::with_dims(128, 96, 1);
        let mut m = Machine::new(MachineConfig::hpca().with_cores(4));
        w.setup(&mut m, 4);
        while !m.all_done() {
            m.run_window(1_000_000);
        }
        // Inner pixels: (w-2) x (h-2); each emits one store per 64-px block.
        let stores = m.stats().stores;
        assert!(stores > 0);
        // All four threads hit the final barrier.
        assert_eq!(m.stats().barrier_episodes, 1);
    }

    #[test]
    fn parallel_speedup_is_near_linear() {
        let elapsed = |threads: usize| -> u64 {
            let w = SobelWorkload::with_dims(256, 192, 1);
            let mut m = Machine::new(MachineConfig::hpca().with_cores(threads));
            w.setup(&mut m, threads);
            while !m.all_done() {
                m.run_window(1_000_000);
            }
            m.time_ps()
        };
        let t1 = elapsed(1);
        let t4 = elapsed(4);
        let speedup = t1 as f64 / t4 as f64;
        assert!(
            speedup > 3.0,
            "sobel must scale near-linearly: {speedup:.2}"
        );
    }

    #[test]
    fn checksum_is_deterministic() {
        let a = SobelWorkload::with_dims(100, 80, 9).checksum();
        let b = SobelWorkload::with_dims(100, 80, 9).checksum();
        assert_eq!(a, b);
        assert_ne!(a, 0);
    }
}
