//! Facility-tier heterogeneity: per-node specs and cost-aware
//! placement thread through rack specs without costing identity or
//! determinism.
//!
//! * a facility of homogeneous [`NodeSpec`] racks is byte-identical to
//!   the single-machine clone path on the facility digest;
//! * a genuinely heterogeneous facility (big/little nodes, weighted
//!   nameplates, `CheapestHeadroom` placement) reports byte-identically
//!   at 1, 2 and 8 workers and on either stepping core.

use sprint_archsim::config::MachineConfig;
use sprint_cluster::{ClusterPolicy, NodeSpec, Placement, RackSupplyParams};
use sprint_core::config::SprintConfig;
use sprint_facility::prelude::*;
use sprint_thermal::grid::GridThermalParams;
use sprint_workloads::traffic::TrafficParams;

fn base_builder(racks: usize, event_driven: bool) -> FacilityBuilder {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 8.0;
    FacilityBuilder::new(racks)
        .rack_thermal(GridThermalParams::rack(2, 1).time_scaled(3000.0))
        .rack_supply(RackSupplyParams::rack(2).time_scaled(3000.0))
        .config(cfg)
        .policy(ClusterPolicy::greedy_default())
        .epoch_windows(32)
        .max_time_s(0.01)
        .traffic({
            let mut traffic = TrafficParams::frontend(7, 8, 60_000.0);
            traffic.size_weights = [1.0, 0.0, 0.0, 0.0];
            traffic
        })
        .event_driven(event_driven)
}

/// Homogeneous specs through the facility tier reproduce the clone
/// path's facility digest exactly.
#[test]
fn homogeneous_spec_facility_is_byte_identical_to_the_clone_path() {
    let clone_path = base_builder(2, false)
        .machine(MachineConfig::hpca())
        .build()
        .run(2);
    let spec_path = base_builder(2, false)
        .node_specs((0..2).map(|_| NodeSpec::standard(MachineConfig::hpca())))
        .build()
        .run(2);
    assert_eq!(
        clone_path.digest(),
        spec_path.digest(),
        "homogeneous NodeSpec racks diverged from the clone path at the \
         facility tier: p99 {} vs {}",
        clone_path.p99_latency_s,
        spec_path.p99_latency_s,
    );
}

fn hetero_builder(event_driven: bool) -> FacilityBuilder {
    base_builder(4, event_driven)
        .node_specs([
            NodeSpec::standard(MachineConfig::hpca())
                .with_share_weight(1.4)
                .with_thermal_weight(1.2),
            NodeSpec::standard(MachineConfig::hpca().with_cores(8))
                .with_share_weight(0.8)
                .with_thermal_weight(0.85),
        ])
        .placement(Placement::CheapestHeadroom)
}

/// The worker-count and stepping-core independence the facility digest
/// promises, now on a heterogeneous fleet with cost-aware placement.
#[test]
fn hetero_facility_is_byte_identical_across_cores_and_worker_counts() {
    let oracle = hetero_builder(false).build().run(1);
    assert!(oracle.completed > 0, "the fixture never completed a task");
    for threads in [2usize, 8] {
        let report = hetero_builder(false).build().run(threads);
        assert_eq!(
            oracle.digest(),
            report.digest(),
            "heterogeneous lockstep facility diverged at {threads} workers"
        );
    }
    for threads in [1usize, 2, 8] {
        let report = hetero_builder(true).build().run(threads);
        assert_eq!(
            oracle.digest(),
            report.digest(),
            "heterogeneous event-driven facility at {threads} workers \
             diverged from the lockstep oracle"
        );
    }
}
