//! Facility figure: tail latency vs facility power cap, global
//! cross-rack sprint rationing against the facility-oblivious static
//! split (`repro facility`).
//!
//! Sixteen 16-server racks (the proven `rack(4,4)` figure
//! configuration) sit in rows behind one building feed that cannot
//! carry every rack's nameplate at once. Each rack serves its own
//! open-arrival traffic stream — same mean rate, but diurnal phases
//! rotated so rack peaks do not coincide. The sweep fixes the facility
//! cap at a fraction of the aggregate nameplate and compares two
//! admission tiers at the *same* total budget:
//!
//! * **oblivious** ([`FacilityPolicy::PerRack`]) — the cap is split
//!   equally at commissioning time and never moved: every rack owns
//!   `cap / N` watts through its peak and its trough alike;
//! * **global** ([`FacilityPolicy::GlobalRationed`]) — the settlement
//!   tier re-divides the cap every epoch by rack demand, dealing the
//!   pool above the per-rack floors in whole sprint-slot quanta, so the
//!   watts idle in one rack's trough carry another rack's peak (and
//!   land as *admissible sprints*, not stranded sub-slot watts).
//!
//! The figure of merit is the facility-wide p99 latency: under a tight
//! cap the oblivious split strands sprint headroom exactly when a rack
//! needs it, while global rationing rides the rotating peaks — the
//! facility-scale version of the paper's core claim that pooled
//! thermal/electrical headroom beats per-unit worst-case provisioning.
//!
//! Racks are stepped by the event-driven core by default (idle nodes
//! cost event-heap ticks, not lockstep windows); `repro facility
//! --oracle` re-runs every sweep point on the lockstep golden oracle
//! and asserts the two report digests are byte-identical — the
//! cluster-level equivalence contract, re-proved at study scale.

use std::time::Instant;

use sprint_cluster::{ClusterPolicy, PowerPolicy, RackSupplyParams};
use sprint_core::config::SprintConfig;
use sprint_facility::prelude::*;
use sprint_thermal::grid::GridThermalParams;
use sprint_workloads::traffic::TrafficParams;

use crate::output::{Csv, TextTable};

/// Thermal/electrical time compression (the rack figure's).
pub const FACILITY_COMPRESS: f64 = 6000.0;
/// Racks in the full-scale study.
pub const FACILITY_RACKS: usize = 16;
/// Rack edge in servers (16 nodes per rack, a 32x32 ADI grid each).
pub const FACILITY_RACK_EDGE: usize = 4;
/// Open-arrival tasks per full-scale run; the four-point cap sweep
/// simulates `8 * FACILITY_TASKS` = 102,400 tasks end to end.
pub const FACILITY_TASKS: usize = 12_800;
/// Mean per-rack arrival rate, Hz. Sized so a nameplate-powered rack
/// rides well under saturation while a one-sprint-slot share saturates
/// transiently at every diurnal peak.
pub const FACILITY_RATE_HZ: f64 = 1_800.0;
/// Traffic seed for the study.
pub const FACILITY_SEED: u64 = 2012;
/// Co-simulation window, picoseconds (20 µs: the facility studies trade
/// scheduler granularity for wall-clock; the probe that sized it saw
/// sub-percent tail movement against the 1 µs default).
pub const FACILITY_WINDOW_PS: u64 = 20_000_000;
/// Sampling windows per settlement epoch (0.32 ms cadence — hundreds of
/// settlements per diurnal period, and several settlements inside one
/// defer window so the global tier can re-deal caps before a deferred
/// task gives up and degrades).
pub const FACILITY_EPOCH_WINDOWS: u64 = 16;
/// Guaranteed per-rack floor under global rationing, watts — carries a
/// starved rack's sustained load, not a sprint.
pub const FACILITY_FLOOR_W: f64 = 20.0;
/// Flex-pool quantum under global rationing, watts — the per-sprint
/// booking of [`PowerPolicy::rationed_default`], so every quantum the
/// settlement deals a rack buys exactly one admissible sprint.
pub const FACILITY_SLOT_W: f64 = 18.0;
/// The cap sweep, expressed as per-rack watts (multiply by the rack
/// count for the facility cap). The rack nameplate is 120 W, so the
/// sweep runs from one hard-rationed sprint slot to fully provisioned.
pub const FACILITY_CAP_SHARES_W: [f64; 4] = [25.0, 40.0, 60.0, 120.0];

/// Worker threads for facility runs: every core the host offers. The
/// report is byte-identical at any thread count, so this is purely a
/// wall-clock choice.
pub fn facility_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The facility-wide base traffic stream (each rack derives a
/// phase-rotated, reseeded share of it): diurnal sinusoid, fan-in
/// bursts, heavy-tailed sizes trimmed to A/B (a C or D outlier on a
/// floor-rationed rack runs sustained for tens of simulated
/// milliseconds — a different study's tail).
pub fn facility_traffic(tasks: usize) -> TrafficParams {
    let mut traffic = TrafficParams::frontend(FACILITY_SEED, tasks, FACILITY_RATE_HZ);
    traffic.size_weights = [0.95, 0.05, 0.0, 0.0];
    traffic
}

/// Builds the study facility: `racks` standard figure racks in rows of
/// four behind a `share_w * racks` watt feed, under the given facility
/// tier. Everything but the facility policy and cap is held fixed, so
/// any latency difference is the admission tier's doing.
pub fn study_facility(
    policy: FacilityPolicy,
    share_w: f64,
    racks: usize,
    tasks: usize,
) -> Facility {
    study_facility_with(policy, share_w, racks, tasks, |b| b)
}

/// [`study_facility`] with a final customization hook on the builder —
/// the fault study reuses the whole configuration and only layers its
/// fault plans (and a shorter horizon) on top, so the degradation
/// numbers stay comparable to the cap sweep's.
pub fn study_facility_with(
    policy: FacilityPolicy,
    share_w: f64,
    racks: usize,
    tasks: usize,
    customize: impl FnOnce(FacilityBuilder) -> FacilityBuilder,
) -> Facility {
    let nodes = FACILITY_RACK_EDGE * FACILITY_RACK_EDGE;
    let mut cfg = SprintConfig::hpca_parallel();
    // Nameplate credit, as in the rack figures: each node's governor
    // assumes a fair share of the rack's sustainable envelope.
    cfg.tdp_w = 8.0;
    cfg.sample_window_ps = FACILITY_WINDOW_PS;
    let builder = FacilityBuilder::new(racks)
        .rack_thermal(
            GridThermalParams::rack(FACILITY_RACK_EDGE, FACILITY_RACK_EDGE)
                .time_scaled(FACILITY_COMPRESS),
        )
        .rack_supply(RackSupplyParams::rack(nodes).time_scaled(FACILITY_COMPRESS))
        .config(cfg)
        .policy(ClusterPolicy::GreedyHeadroom {
            admit_headroom_k: 15.0,
            shed_headroom_k: 4.0,
            min_sprinting: 1,
            // Finite (a rack pinned below one sprint slot must degrade
            // its queue to sustained runs, not head-of-line block) but
            // several settlement epochs long, so headroom the global
            // tier re-deals mid-wait still rescues a deferred task.
            defer_s: 2e-3,
        })
        .power_policy(PowerPolicy::rationed_default())
        .row(RowParams {
            racks_per_row: 4,
            recirc_k_per_w: 0.02,
            crac_capacity_w: 240.0,
            max_inlet_c: 45.0,
        })
        .facility_policy(policy)
        .facility_cap_w(share_w * racks as f64)
        .epoch_windows(FACILITY_EPOCH_WINDOWS)
        .max_time_s(60.0)
        // The event-driven core is the default study engine; the
        // lockstep oracle stays reachable through the customize hook
        // (the `--oracle` cross-check rebuilds with it).
        .event_driven(true)
        .traffic(facility_traffic(tasks));
    customize(builder).build()
}

/// One (cap, tier) point of the sweep.
pub struct FacilityRow {
    /// Tier label.
    pub label: &'static str,
    /// Per-rack share of the facility cap, watts.
    pub share_w: f64,
    /// Facility report.
    pub report: FacilityReport,
    /// Wall-clock for the run, seconds.
    pub wall_s: f64,
}

/// Runs one sweep point on every available core. With `oracle` set,
/// the identical configuration is additionally run on the lockstep
/// golden oracle and the two report digests are asserted byte-equal
/// (the wall-clock recorded is always the event-driven run's).
pub fn run_facility_policy(
    label: &'static str,
    policy: FacilityPolicy,
    share_w: f64,
    racks: usize,
    tasks: usize,
    oracle: bool,
) -> FacilityRow {
    let facility = study_facility(policy, share_w, racks, tasks);
    let start = Instant::now();
    let report = facility.run(facility_threads());
    let wall_s = start.elapsed().as_secs_f64();
    if oracle {
        let lockstep =
            study_facility_with(policy, share_w, racks, tasks, |b| b.event_driven(false))
                .run(facility_threads());
        assert_eq!(
            report.digest(),
            lockstep.digest(),
            "{label} @ {share_w} W/rack: event-driven facility diverged from \
             the lockstep oracle"
        );
    }
    // A truncated rack would flatter the slow tier (only completed
    // tasks enter the percentiles), so refuse to compare truncated
    // runs — same stance as the rack figures.
    assert!(
        report.all_drained,
        "{label} @ {share_w} W/rack: every rack must drain within the time limit"
    );
    assert_eq!(report.completed, tasks, "{label}: no task may go missing");
    FacilityRow {
        label,
        share_w,
        report,
        wall_s,
    }
}

/// The facility figure at explicit scale: `racks` racks, `tasks` tasks
/// per run, sweeping `shares` (per-rack watts) under both tiers.
/// `oracle` cross-checks every point against the lockstep stepper.
pub fn fig_facility_at(
    racks: usize,
    tasks: usize,
    shares: &[f64],
    oracle: bool,
) -> (Vec<FacilityRow>, String) {
    let mut rows = Vec::with_capacity(shares.len() * 2);
    for &share in shares {
        rows.push(run_facility_policy(
            "oblivious",
            FacilityPolicy::PerRack,
            share,
            racks,
            tasks,
            oracle,
        ));
        rows.push(run_facility_policy(
            "global",
            FacilityPolicy::GlobalRationed {
                floor_w: FACILITY_FLOOR_W,
                slot_w: FACILITY_SLOT_W,
            },
            share,
            racks,
            tasks,
            oracle,
        ));
    }
    let mut out = format!(
        "Facility sprint rationing — {racks} racks x {n} servers, {tasks} open-arrival \
         tasks, rotating diurnal peaks, shared CRAC rows\n",
        n = FACILITY_RACK_EDGE * FACILITY_RACK_EDGE,
    );
    let mut table = TextTable::new();
    table.row(&[
        &"cap W/rack",
        &"tier",
        &"mean ms",
        &"p95 ms",
        &"p99 ms",
        &"max ms",
        &"sprints",
        &"power sheds",
        &"peak inlet C",
    ]);
    let mut csv = Csv::new(
        "fig_facility",
        &[
            "cap_w_per_rack",
            "facility_cap_w",
            "tier",
            "racks",
            "tasks",
            "mean_latency_ms",
            "p95_latency_ms",
            "p99_latency_ms",
            "max_latency_ms",
            "makespan_ms",
            "admitted_sprints",
            "sheds",
            "power_sheds",
            "supply_aborts",
            "peak_inlet_c",
            "peak_junction_c",
            "epochs",
            "wall_s",
        ],
    );
    for r in &rows {
        let sprints: usize = r
            .report
            .rack_reports
            .iter()
            .map(|c| c.admitted_sprints)
            .sum();
        table.row(&[
            &format!("{:.0}", r.share_w),
            &r.label,
            &format!("{:.2}", r.report.mean_latency_s * 1e3),
            &format!("{:.2}", r.report.p95_latency_s * 1e3),
            &format!("{:.2}", r.report.p99_latency_s * 1e3),
            &format!("{:.2}", r.report.max_latency_s * 1e3),
            &sprints,
            &r.report.power_sheds,
            &format!("{:.1}", r.report.peak_inlet_c),
        ]);
        csv.row(&[
            &format!("{:.1}", r.share_w),
            &format!("{:.1}", r.share_w * r.report.racks as f64),
            &r.label,
            &r.report.racks,
            &r.report.completed,
            &format!("{:.4}", r.report.mean_latency_s * 1e3),
            &format!("{:.4}", r.report.p95_latency_s * 1e3),
            &format!("{:.4}", r.report.p99_latency_s * 1e3),
            &format!("{:.4}", r.report.max_latency_s * 1e3),
            &format!("{:.4}", r.report.makespan_s * 1e3),
            &sprints,
            &r.report.sheds,
            &r.report.power_sheds,
            &r.report.supply_aborts,
            &format!("{:.2}", r.report.peak_inlet_c),
            &format!("{:.2}", r.report.peak_junction_c),
            &r.report.epochs,
            &format!("{:.2}", r.wall_s),
        ]);
    }
    out.push_str(&table.render());
    // The headline claim, asserted so the figure cannot print a stale
    // narrative: wherever the cap actually bites (a share below the
    // nameplate), the global tier must beat the oblivious split on the
    // facility-wide p99.
    let nameplate_w = RackSupplyParams::rack(FACILITY_RACK_EDGE * FACILITY_RACK_EDGE).cap_w;
    let mut tightest: Option<(f64, f64, f64)> = None;
    for pair in rows.chunks(2) {
        let (obl, glob) = (&pair[0], &pair[1]);
        if obl.share_w < nameplate_w {
            assert!(
                glob.report.p99_latency_s < obl.report.p99_latency_s,
                "global rationing lost the p99 at {} W/rack: {:.5} s vs oblivious {:.5} s",
                obl.share_w,
                glob.report.p99_latency_s,
                obl.report.p99_latency_s
            );
            if tightest.is_none() {
                tightest = Some((
                    obl.share_w,
                    obl.report.p99_latency_s,
                    glob.report.p99_latency_s,
                ));
            }
        }
    }
    if let Some((share, obl_p99, glob_p99)) = tightest {
        out.push_str(&format!(
            "under the same {share:.0} W/rack facility budget the oblivious split strands\n\
             sprint headroom in idle racks while each peak starves: global rationing\n\
             follows the rotating peaks instead and cuts the facility p99 {:.1}x\n\
             ({:.2} ms vs {:.2} ms). at full nameplate the tiers converge — the gap is\n\
             the admission tier's, not the workload's.\n",
            obl_p99 / glob_p99,
            glob_p99 * 1e3,
            obl_p99 * 1e3,
        ));
    }
    out.push_str(&format!("wrote {}\n", csv.finish().display()));
    (rows, out)
}

/// The facility figure (`repro facility`): the full 16-rack, 102k-task
/// sweep, or a 4-rack reduced sweep under `--quick`. `oracle` re-runs
/// every point on the lockstep stepper and asserts digest equality.
pub fn fig_facility(quick: bool, oracle: bool) -> String {
    if quick {
        fig_facility_at(4, 800, &[25.0, 120.0], oracle).1
    } else {
        fig_facility_at(
            FACILITY_RACKS,
            FACILITY_TASKS,
            &FACILITY_CAP_SHARES_W,
            oracle,
        )
        .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature of the sweep machinery: two racks, a tight share,
    /// both tiers drain, and the global tier's p99 is no worse. (The
    /// full-scale ordering is asserted inside `fig_facility` itself and
    /// exercised by the example-smoke CI job at reduced scale.) Runs
    /// with the oracle cross-check on, so the event-driven default is
    /// digest-pinned to the lockstep stepper on the study's own
    /// configuration.
    #[test]
    fn reduced_facility_sweep_runs_and_orders() {
        let tasks = 64;
        let obl = run_facility_policy("oblivious", FacilityPolicy::PerRack, 40.0, 2, tasks, true);
        let glob = run_facility_policy(
            "global",
            FacilityPolicy::GlobalRationed {
                floor_w: FACILITY_FLOOR_W,
                slot_w: FACILITY_SLOT_W,
            },
            40.0,
            2,
            tasks,
            true,
        );
        assert_eq!(obl.report.completed, tasks);
        assert_eq!(glob.report.completed, tasks);
        assert!(
            glob.report.p99_latency_s <= obl.report.p99_latency_s,
            "global {:.5} s vs oblivious {:.5} s",
            glob.report.p99_latency_s,
            obl.report.p99_latency_s
        );
    }
}
