//! Core activation schedules and the Figure 6 experiment driver.
//!
//! Section 5 studies the in-rush current of waking 16 power-gated cores:
//! simultaneous activation collapses the supply beyond tolerance, while a
//! sufficiently gradual (linear) activation schedule keeps power and ground
//! bounce within the 1-2% budget at a negligible cost in sprint time.

use serde::{Deserialize, Serialize};

use crate::grid::{PdnParams, SprintPdn};
use crate::integrity::{SupplyIntegrityReport, ToleranceSpec};
use crate::transient::{Integration, TransientError, TransientSim};

/// When each core begins drawing current.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ActivationSchedule {
    /// All cores activate at once (the paper's "abrupt" case; its SPICE run
    /// switches within 1 ns).
    Simultaneous,
    /// Cores stagger uniformly so the aggregate current ramps linearly over
    /// the given interval (the paper's 1.28 µs and 128 µs cases).
    LinearRamp {
        /// Total ramp duration, seconds.
        total_s: f64,
    },
}

impl ActivationSchedule {
    /// Start time for core `i` of `n` under this schedule.
    pub fn start_time_s(&self, core: usize, cores: usize) -> f64 {
        match self {
            ActivationSchedule::Simultaneous => 0.0,
            ActivationSchedule::LinearRamp { total_s } => total_s * core as f64 / cores as f64,
        }
    }

    /// Aggregate current multiplier at time `t` (0 → no cores, 1 → all).
    pub fn aggregate_fraction(&self, t: f64) -> f64 {
        match self {
            ActivationSchedule::Simultaneous => {
                if t >= 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationSchedule::LinearRamp { total_s } => (t / total_s).clamp(0.0, 1.0),
        }
    }
}

/// One sampled point of an activation transient.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivationSample {
    /// Time since activation began, seconds.
    pub time_s: f64,
    /// Supply voltage at the first core tap, volts.
    pub supply_v: f64,
    /// Worst supply voltage across all core taps, volts.
    pub min_supply_v: f64,
    /// Total load current, amps.
    pub load_a: f64,
}

/// Result of simulating an activation schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActivationResult {
    /// Sampled waveform.
    pub samples: Vec<ActivationSample>,
    /// Supply-integrity analysis against the tolerance spec.
    pub report: SupplyIntegrityReport,
}

/// Configuration for an activation experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivationExperiment {
    /// PDN parameters.
    pub pdn: PdnParams,
    /// Activation schedule under test.
    pub schedule: ActivationSchedule,
    /// Rise time of an individual core's current once it starts, seconds
    /// (the power-gate turn-on; 10 ns by default).
    pub core_rise_s: f64,
    /// Total simulated horizon, seconds.
    pub horizon_s: f64,
    /// Simulation step, seconds.
    pub dt_s: f64,
    /// Tolerance specification (2% of nominal in the paper).
    pub tolerance: ToleranceSpec,
    /// Record every `sample_every` steps.
    pub sample_every: usize,
}

impl ActivationExperiment {
    /// The Figure 6 experiment at a given schedule: 16 cores, 2 ns steps,
    /// 2 ms horizon is the paper's plot range but 40 µs suffices for the
    /// fast dynamics; callers can extend for the full figure.
    pub fn hpca(schedule: ActivationSchedule) -> Self {
        Self {
            pdn: PdnParams::hpca(),
            schedule,
            core_rise_s: 10e-9,
            horizon_s: 40e-6,
            dt_s: 2e-9,
            tolerance: ToleranceSpec::two_percent_of(1.2),
            sample_every: 8,
        }
    }

    /// Runs the experiment.
    ///
    /// # Errors
    ///
    /// Propagates [`TransientError`] from circuit compilation.
    pub fn run(&self) -> Result<ActivationResult, TransientError> {
        let pdn = self.pdn.build();
        let mut sim = TransientSim::new(pdn.circuit(), self.dt_s, Integration::Trapezoidal)?;
        let result = drive_activation(
            &pdn,
            &mut sim,
            self.schedule,
            self.core_rise_s,
            self.horizon_s,
            self.sample_every,
            &self.tolerance,
        );
        Ok(result)
    }
}

/// Drives an already-compiled simulation through an activation schedule,
/// sampling the core supply voltages.
pub fn drive_activation(
    pdn: &SprintPdn,
    sim: &mut TransientSim,
    schedule: ActivationSchedule,
    core_rise_s: f64,
    horizon_s: f64,
    sample_every: usize,
    tolerance: &ToleranceSpec,
) -> ActivationResult {
    assert!(sample_every > 0, "sample_every must be positive");
    let n = pdn.cores().len();
    let i_core = pdn.core_current_a();
    let dt = sim.dt_s();
    let steps = (horizon_s / dt).ceil() as usize;
    let mut samples = Vec::with_capacity(steps / sample_every + 1);
    let t0 = sim.time_s();
    for step in 0..steps {
        let t = step as f64 * dt;
        // Set per-core currents for this instant.
        let mut total = 0.0;
        for (k, &src) in pdn.cores().iter().enumerate() {
            let start = schedule.start_time_s(k, n);
            let ramp = ((t - start) / core_rise_s).clamp(0.0, 1.0);
            let amps = i_core * ramp;
            total += amps;
            sim.set_current(src, amps);
        }
        sim.step();
        if step % sample_every == 0 {
            samples.push(ActivationSample {
                time_s: sim.time_s() - t0,
                supply_v: pdn.core_supply_v(sim, 0),
                min_supply_v: pdn.min_core_supply_v(sim),
                load_a: total,
            });
        }
    }
    let report = tolerance.analyze(samples.iter().map(|s| (s.time_s, s.min_supply_v)));
    ActivationResult { samples, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_start_times() {
        let s = ActivationSchedule::LinearRamp { total_s: 1.6e-6 };
        assert_eq!(s.start_time_s(0, 16), 0.0);
        assert!((s.start_time_s(8, 16) - 0.8e-6).abs() < 1e-18);
        assert_eq!(ActivationSchedule::Simultaneous.start_time_s(9, 16), 0.0);
    }

    #[test]
    fn aggregate_fraction_clamps() {
        let s = ActivationSchedule::LinearRamp { total_s: 1.0 };
        assert_eq!(s.aggregate_fraction(-0.5), 0.0);
        assert!((s.aggregate_fraction(0.25) - 0.25).abs() < 1e-12);
        assert_eq!(s.aggregate_fraction(2.0), 1.0);
    }

    #[test]
    fn abrupt_activation_bounces_harder_than_slow_ramp() {
        // Scaled-down experiment (4 cores, short horizon) for test speed;
        // the full Figure 6 runs live in the bench harness.
        let mut abrupt = ActivationExperiment::hpca(ActivationSchedule::Simultaneous);
        abrupt.pdn = abrupt.pdn.with_cores(4);
        abrupt.horizon_s = 8e-6;
        let mut slow =
            ActivationExperiment::hpca(ActivationSchedule::LinearRamp { total_s: 32e-6 });
        slow.pdn = slow.pdn.with_cores(4);
        slow.horizon_s = 40e-6;
        let ra = abrupt.run().unwrap();
        let rs = slow.run().unwrap();
        assert!(
            ra.report.min_v < rs.report.min_v,
            "abrupt min {:.4} must be below slow-ramp min {:.4}",
            ra.report.min_v,
            rs.report.min_v
        );
    }

    #[test]
    fn load_current_reaches_full_value() {
        let mut exp = ActivationExperiment::hpca(ActivationSchedule::Simultaneous);
        exp.pdn = exp.pdn.with_cores(2);
        exp.horizon_s = 2e-6;
        let r = exp.run().unwrap();
        let last = r.samples.last().unwrap();
        assert!((last.load_a - 1.0).abs() < 1e-9, "2 cores x 0.5 A");
    }
}
