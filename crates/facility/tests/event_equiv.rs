//! Facility-level golden equivalence: running every rack on the
//! event-driven core must reproduce the lockstep facility report
//! digest byte-for-byte, at any worker-thread count, with every
//! coupling engaged (row airflow, rationed facility feed,
//! power-rationed local admission, bursty diurnal traffic). The
//! lockstep path stays in the tree exactly so this oracle can keep
//! running.

use sprint_cluster::{ClusterPolicy, PowerPolicy, RackSupplyParams};
use sprint_core::config::SprintConfig;
use sprint_facility::prelude::*;
use sprint_thermal::grid::GridThermalParams;
use sprint_workloads::traffic::TrafficParams;

/// The determinism suite's fully-coupled facility, with the stepping
/// core selectable.
fn coupled_facility(racks: usize, seed: u64, tasks: usize, event_driven: bool) -> Facility {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 8.0;
    FacilityBuilder::new(racks)
        .rack_thermal(GridThermalParams::rack(2, 1).time_scaled(3000.0))
        .rack_supply(RackSupplyParams::rack(2).time_scaled(3000.0))
        .config(cfg)
        .policy(ClusterPolicy::GreedyHeadroom {
            admit_headroom_k: 15.0,
            shed_headroom_k: 4.0,
            min_sprinting: 1,
            defer_s: 2e-4,
        })
        .power_policy(PowerPolicy::Rationed {
            sprint_draw_w: 14.0,
            shed_reserve_fraction: 0.5,
        })
        .row(RowParams {
            racks_per_row: 4,
            recirc_k_per_w: 0.05,
            crac_capacity_w: 8.0,
            max_inlet_c: 40.0,
        })
        .facility_policy(FacilityPolicy::GlobalRationed {
            floor_w: 7.5,
            slot_w: 14.0,
        })
        .facility_cap_w(14.5 * racks as f64)
        .epoch_windows(32)
        .traffic({
            let mut traffic = TrafficParams::frontend(seed, tasks, 60_000.0);
            traffic.size_weights = [1.0, 0.0, 0.0, 0.0];
            traffic
        })
        .event_driven(event_driven)
        .build()
}

#[test]
fn event_driven_facility_matches_lockstep_at_1_2_and_8_workers() {
    let lockstep = coupled_facility(8, 5, 16, false);
    let event = coupled_facility(8, 5, 16, true);

    let oracle = lockstep.run(1);
    assert_eq!(oracle.completed, 16, "every task completes");
    assert!(oracle.all_drained);

    for threads in [1usize, 2, 8] {
        let report = event.run(threads);
        assert_eq!(
            oracle.digest(),
            report.digest(),
            "event-driven at {threads} workers diverged from the \
             lockstep oracle: p99 {} vs {}, epochs {} vs {}",
            oracle.p99_latency_s,
            report.p99_latency_s,
            oracle.epochs,
            report.epochs,
        );
    }

    // The equivalence claim is not vacuous: the couplings fired.
    assert!(
        oracle.peak_inlet_c > 25.0,
        "row recirculation never lifted an inlet (peak {})",
        oracle.peak_inlet_c
    );
    assert!(
        oracle.epochs > 1,
        "the settlement barrier ran more than once"
    );
}
