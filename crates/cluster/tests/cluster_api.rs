//! Integration tests for the rack-level cluster: the 1-node
//! byte-for-byte equivalence the refactor promises, and the policy
//! comparisons the subsystem exists for.

use sprint_archsim::config::MachineConfig;
use sprint_archsim::machine::Machine;
use sprint_cluster::prelude::*;
use sprint_core::config::{ExecutionMode, SprintConfig};
use sprint_core::controller::ControllerEvent;
use sprint_core::session::{RunReport, ScenarioBuilder, SprintSession, StepOutcome};
use sprint_powersource::hybrid::HybridSupply;
use sprint_thermal::floorplan::Floorplan;
use sprint_thermal::grid::GridThermalParams;
use sprint_workloads::suite::{suite_loader, InputSize, WorkloadKind};

/// A 1-node cluster is the same co-simulation as a standalone session:
/// same machine, same grid, same controller decisions — byte for byte.
/// This pins the whole port stack (node view power mapping, regional
/// budget, leader-advance clock) against the code path every existing
/// test already trusts.
#[test]
fn one_node_cluster_reproduces_a_standalone_session_byte_for_byte() {
    // One server whose footprint covers the full rack floor, so the
    // node's regional readouts coincide with the grid-global ones.
    let params = || {
        GridThermalParams::rack(1, 1)
            .with_floorplan(Floorplan::full_die())
            .time_scaled(2000.0)
    };

    let mut standalone = ScenarioBuilder::new()
        .load(suite_loader(WorkloadKind::Sobel, InputSize::A, 16))
        .thermal(params().build())
        .config(SprintConfig::hpca_parallel())
        .build();
    assert_eq!(standalone.run_to_completion(), StepOutcome::Finished);
    let expected = standalone.report();

    let mut cluster = ClusterBuilder::new(params())
        .policy(ClusterPolicy::AllSprint)
        .config(SprintConfig::hpca_parallel())
        .tasks(ClusterTask::batch(WorkloadKind::Sobel, InputSize::A, 16, 1))
        .build();
    assert_eq!(cluster.run_to_completion(), ClusterOutcome::Drained);
    assert_reports_byte_equal(&cluster.node_report(0), &expected);

    let outcome = cluster.outcomes()[0];
    assert!(outcome.sprinted);
    assert_eq!(outcome.copies, 1);
    assert_eq!(
        outcome.completed_s.to_bits(),
        expected.completion_s.to_bits()
    );
}

/// Asserts two coupled reports are byte-for-byte identical.
fn assert_reports_byte_equal(got: &RunReport, expected: &RunReport) {
    assert_eq!(got.completion_s.to_bits(), expected.completion_s.to_bits());
    assert_eq!(got.energy_j.to_bits(), expected.energy_j.to_bits());
    assert_eq!(got.instructions, expected.instructions);
    assert_eq!(
        got.sprint_end_s.map(f64::to_bits),
        expected.sprint_end_s.map(f64::to_bits)
    );
    assert_eq!(
        got.max_junction_c.to_bits(),
        expected.max_junction_c.to_bits()
    );
    assert_eq!(got.finished, expected.finished);
    assert_eq!(got.events, expected.events);
    assert_eq!(got.trace.len(), expected.trace.len());
    for (g, e) in got.trace.iter().zip(&expected.trace) {
        assert_eq!(g.time_s.to_bits(), e.time_s.to_bits());
        assert_eq!(g.power_w.to_bits(), e.power_w.to_bits());
        assert_eq!(g.junction_c.to_bits(), e.junction_c.to_bits());
        assert_eq!(g.melt_fraction.to_bits(), e.melt_fraction.to_bits());
        assert_eq!(g.active_cores, e.active_cores);
        assert_eq!(g.instructions, e.instructions);
    }
}

/// A 1-node cluster on an independent rechargeable supply (the phone
/// hybrid) is still the same co-simulation as a standalone session —
/// including the *idle* windows between two staggered tasks, where the
/// cluster's lockstep rest path must recharge the supply exactly as a
/// standalone session's `rest` does. This pins the supply port through
/// the cluster (`Box<dyn PowerSupply>` erasure, per-window draws,
/// idle-recharge wiring) byte for byte.
#[test]
fn one_node_cluster_on_a_hybrid_supply_matches_a_standalone_session() {
    let params = || {
        GridThermalParams::rack(1, 1)
            .with_floorplan(Floorplan::full_die())
            .time_scaled(2000.0)
    };
    let sprint_cfg = SprintConfig::hpca_parallel();
    let window_s = sprint_cfg.sample_window_ps as f64 * 1e-12;
    // Two tasks with an idle gap between them: the first ends well
    // before the second arrives, so the node rests (and the hybrid
    // recharges) for the windows in between.
    let gap_arrival_s = 2e-3;
    let task = |arrival_s| ClusterTask::new(WorkloadKind::Sobel, InputSize::A, 16, arrival_s);

    // The standalone mirror replays the cluster scheduler's exact
    // per-window protocol: sustained-armed build, then per task
    // set_config + load + begin_burst, with one rest per idle window.
    let mut sustained = sprint_cfg.clone();
    sustained.mode = ExecutionMode::Sustained;
    let mut standalone = SprintSession::new(
        Machine::new(MachineConfig::hpca()),
        params().build(),
        HybridSupply::phone(),
        sustained,
        2048,
        Vec::new(),
    );
    let mut windows: u64 = 0;
    for spec in [task(0.0), task(gap_arrival_s)] {
        while spec.arrival_s > windows as f64 * window_s {
            standalone.rest(window_s);
            windows += 1;
        }
        standalone.set_config(sprint_cfg.clone());
        suite_loader(spec.kind, spec.size, spec.threads)(standalone.machine_mut());
        standalone.begin_burst();
        loop {
            let outcome = standalone.step();
            windows += 1;
            if outcome != StepOutcome::Running {
                assert_eq!(outcome, StepOutcome::Finished);
                break;
            }
        }
    }
    let expected = standalone.report();
    let cap_after = standalone.supply().sprint_capacity_j();

    let mut cluster = ClusterBuilder::new(params())
        .policy(ClusterPolicy::AllSprint)
        .config(sprint_cfg.clone())
        .node_supply(|_| Box::new(HybridSupply::phone()))
        .tasks([task(0.0), task(gap_arrival_s)])
        .build();
    assert_eq!(cluster.run_to_completion(), ClusterOutcome::Drained);
    assert_reports_byte_equal(&cluster.node_report(0), &expected);

    // The idle gap must actually have recharged the store: a no-rest
    // replay of the same two bursts ends with a lower sprint capacity.
    let mut no_rest = SprintSession::new(
        Machine::new(MachineConfig::hpca()),
        params().build(),
        HybridSupply::phone(),
        sprint_cfg.clone(),
        2048,
        Vec::new(),
    );
    for _ in 0..2 {
        suite_loader(WorkloadKind::Sobel, InputSize::A, 16)(no_rest.machine_mut());
        no_rest.begin_burst();
        while no_rest.step() == StepOutcome::Running {}
    }
    assert!(
        cap_after > no_rest.supply().sprint_capacity_j(),
        "the lockstep idle path must recharge the hybrid: {} vs {}",
        cap_after,
        no_rest.supply().sprint_capacity_j()
    );
}

/// The figure's claim at test scale: on a shared rack, greedy-headroom
/// admission completes the queue measurably sooner than both baselines.
/// The unmanaged all-sprint rack shows thermal collapse — nameplate-
/// calibrated node governors sprint into exhausted shared headroom,
/// the rack pins at the limit and hardware failsafes fire — while the
/// admission-controlled rack rides just below the limit with zero
/// failsafes (deferral and the shed backstop absorb the contention).
#[test]
fn admission_beats_both_all_sprint_and_no_sprint() {
    let run = |policy: ClusterPolicy| {
        let mut cfg = SprintConfig::hpca_parallel();
        // Each node's governor credits itself the rack's nameplate
        // per-node cooling share (the rack preset sustains ~8 W/node);
        // the credit is honored only when few nodes sprint.
        cfg.tdp_w = 8.0;
        let mut cluster = ClusterBuilder::new(GridThermalParams::rack(3, 3).time_scaled(6000.0))
            .policy(policy)
            .config(cfg)
            .tasks(ClusterTask::batch(
                WorkloadKind::Sobel,
                InputSize::A,
                16,
                36,
            ))
            .trace_capacity(0)
            .build();
        assert_eq!(cluster.run_to_completion(), ClusterOutcome::Drained);
        cluster.report()
    };
    let failsafes = |r: &ClusterReport| -> usize {
        r.node_reports
            .iter()
            .flat_map(|n| n.events.iter())
            .filter(|e| matches!(e, ControllerEvent::FailsafeThrottled { .. }))
            .count()
    };

    let no_sprint = run(ClusterPolicy::NoSprint);
    let all_sprint = run(ClusterPolicy::AllSprint);
    let admission = run(ClusterPolicy::greedy_default());

    assert_eq!(no_sprint.completed, 36);
    assert_eq!(all_sprint.completed, 36);
    assert_eq!(admission.completed, 36);

    // The unmanaged rack collapses: pinned at the limit, failsafes fire.
    assert!(
        all_sprint.peak_junction_c > 69.5,
        "all-sprint must drive the rack to the limit, peaked at {:.1} C",
        all_sprint.peak_junction_c
    );
    assert!(
        failsafes(&all_sprint) >= 5,
        "collapse must trip hardware failsafes, saw {}",
        failsafes(&all_sprint)
    );
    // Admission rides below the limit without ever needing the
    // hardware failsafe; its shed backstop absorbs the excursions.
    assert_eq!(
        failsafes(&admission),
        0,
        "admission control must keep every node out of the failsafe"
    );
    assert!(admission.peak_junction_c < 70.0);
    assert!(admission.peak_junction_c < all_sprint.peak_junction_c);
    assert!(admission.sheds >= 1, "the shed backstop should engage");
    // No-sprint never sprints; admission sprints essentially everything
    // (deferral means tasks wait for headroom instead of degrading).
    assert_eq!(no_sprint.admitted_sprints, 0);
    assert!(admission.admitted_sprints >= 30);

    // The makespan ordering the rack figure reports.
    assert!(
        admission.makespan_s < no_sprint.makespan_s * 0.4,
        "admission {:.5} s must clearly beat no-sprint {:.5} s",
        admission.makespan_s,
        no_sprint.makespan_s
    );
    assert!(
        admission.makespan_s < all_sprint.makespan_s * 0.85,
        "admission {:.5} s must clearly beat all-sprint {:.5} s",
        admission.makespan_s,
        all_sprint.makespan_s
    );
    assert!(
        admission.mean_latency_s < all_sprint.mean_latency_s,
        "rationing must also win on mean latency: {:.5} vs {:.5}",
        admission.mean_latency_s,
        all_sprint.mean_latency_s
    );
}

/// Round-robin admission respects its fixed concurrency cap.
#[test]
fn round_robin_caps_concurrent_sprints() {
    let mut cluster = ClusterBuilder::new(GridThermalParams::rack(2, 2).time_scaled(3000.0))
        .policy(ClusterPolicy::RoundRobin { max_sprinting: 2 })
        .tasks(ClusterTask::batch(WorkloadKind::Sobel, InputSize::A, 16, 8))
        .trace_capacity(0)
        .build();
    let mut max_sprinting = 0usize;
    loop {
        let outcome = cluster.step();
        let sprinting = (0..cluster.nodes())
            .filter(|&n| {
                use sprint_core::controller::SprintState;
                matches!(
                    cluster.node_state(n),
                    SprintState::Ramping | SprintState::Sprinting
                )
            })
            .count();
        max_sprinting = max_sprinting.max(sprinting);
        if outcome.is_terminal() {
            break;
        }
    }
    assert_eq!(cluster.report().completed, 8);
    assert!(
        max_sprinting <= 2,
        "cap of 2 exceeded: saw {max_sprinting} concurrent sprints"
    );
    assert!(cluster.report().admitted_sprints >= 2);
    assert!(cluster.report().denied_sprints >= 1);
}

/// Competitive duplication: with spare nodes, a task is replicated and
/// exactly one outcome is recorded, tagged with the copy count, won by
/// the cooler (faster-sprinting) node.
#[test]
fn competitive_duplication_keeps_the_fastest_copy() {
    // Pre-heat node 0's corner so the copies race from unequal states.
    let rack_params = GridThermalParams::rack(2, 2).time_scaled(3000.0);
    let mut cluster = ClusterBuilder::new(rack_params)
        .policy(ClusterPolicy::CompetitiveDuplicate {
            copies: 2,
            admit_headroom_k: 2.0,
            cancel_losers: false,
        })
        .tasks(ClusterTask::batch(WorkloadKind::Sobel, InputSize::A, 16, 1))
        .trace_capacity(0)
        .build();
    assert_eq!(cluster.run_to_completion(), ClusterOutcome::Drained);
    let report = cluster.report();
    assert_eq!(report.completed, 1, "one outcome despite two copies");
    assert_eq!(report.outcomes[0].copies, 2);
    assert_eq!(
        report.admitted_sprints, 1,
        "sprint counts are per task, not per copy"
    );
    assert_eq!(
        cluster
            .events()
            .iter()
            .filter(|e| matches!(e, ClusterEvent::SprintAdmitted { .. }))
            .count(),
        2,
        "the event log still records both copies' admissions"
    );

    // With a waiting queue as long as the idle pool, no duplication.
    let mut busy = ClusterBuilder::new(GridThermalParams::rack(2, 2).time_scaled(3000.0))
        .policy(ClusterPolicy::CompetitiveDuplicate {
            copies: 2,
            admit_headroom_k: 2.0,
            cancel_losers: false,
        })
        .tasks(ClusterTask::batch(WorkloadKind::Sobel, InputSize::A, 16, 8))
        .trace_capacity(0)
        .build();
    assert_eq!(busy.run_to_completion(), ClusterOutcome::Drained);
    let report = busy.report();
    assert_eq!(report.completed, 8);
    assert!(
        report.outcomes.iter().filter(|o| o.copies > 1).count() <= 2,
        "duplication must stay within spare capacity"
    );
}

/// An admission threshold no cold node could ever satisfy would
/// head-of-line block a deferring queue forever; the builder rejects
/// it up front.
#[test]
#[should_panic(expected = "unsatisfiable")]
fn unsatisfiable_admission_threshold_is_rejected_at_build() {
    // The rack preset has t_max - ambient = 45 K of maximum headroom.
    let _ = ClusterBuilder::new(GridThermalParams::rack(2, 2))
        .policy(ClusterPolicy::GreedyHeadroom {
            admit_headroom_k: 50.0,
            shed_headroom_k: 4.0,
            min_sprinting: 1,
            defer_s: f64::INFINITY,
        })
        .build();
}

/// Tasks arriving over time queue up and keep their arrival-to-
/// completion latency accounting.
#[test]
fn arrivals_queue_and_latency_accounts_for_waiting() {
    let mut cluster = ClusterBuilder::new(GridThermalParams::rack(2, 1).time_scaled(3000.0))
        .policy(ClusterPolicy::AllSprint)
        .tasks(ClusterTask::arrivals(
            WorkloadKind::Sobel,
            InputSize::A,
            16,
            6,
            0.0,
            1e-4,
        ))
        .trace_capacity(0)
        .build();
    assert_eq!(cluster.run_to_completion(), ClusterOutcome::Drained);
    let report = cluster.report();
    assert_eq!(report.completed, 6);
    for o in &report.outcomes {
        assert!(o.assigned_s >= o.arrival_s - 1e-12);
        assert!(o.completed_s > o.assigned_s);
        assert!(o.latency_s() > 0.0);
    }
    assert!(report.makespan_s >= 5.0 * 1e-4, "last arrival is at 0.5 ms");
}
