//! Golden-trace regression tests.
//!
//! The workload suite is fully deterministic (seeded inputs, deterministic
//! scheduling), so every kernel's retired-instruction count, memory traffic
//! and wall-clock are pinned exactly. A change to any of these numbers
//! means the emitted trace changed — intentional changes must update the
//! table *and* re-run the figure calibration in EXPERIMENTS.md.

use sprint_archsim::{Machine, MachineConfig};
use sprint_workloads::suite::{build_workload, InputSize, WorkloadKind};

/// `(kernel, instructions, loads, stores, time_ps)` on 4 cores, size A.
const GOLDEN: [(WorkloadKind, u64, u64, u64, u64); 6] = [
    (
        WorkloadKind::Sobel,
        8_209_788,
        47_850,
        15_950,
        2_381_000_000,
    ),
    (
        WorkloadKind::Feature,
        17_348_810,
        160_992,
        63_432,
        6_179_000_000,
    ),
    (WorkloadKind::Kmeans, 2_248_764, 8_064, 40, 669_000_000),
    (
        WorkloadKind::Disparity,
        24_960_004,
        748_800,
        249_600,
        23_688_000_000,
    ),
    (
        WorkloadKind::Texture,
        5_419_668,
        54_912,
        26_624,
        2_296_000_000,
    ),
    (
        WorkloadKind::Segment,
        8_540_188,
        102_400,
        81_920,
        3_598_000_000,
    ),
];

fn run(kind: WorkloadKind) -> (u64, u64, u64, u64) {
    let w = build_workload(kind, InputSize::A);
    let mut m = Machine::new(MachineConfig::hpca().with_cores(4));
    w.setup(&mut m, 4);
    while !m.all_done() {
        m.run_window(1_000_000);
    }
    let s = m.stats();
    (s.instructions, s.loads, s.stores, m.time_ps())
}

#[test]
fn golden_traces_are_stable() {
    for (kind, instr, loads, stores, time_ps) in GOLDEN {
        let (i, l, s, t) = run(kind);
        assert_eq!(i, instr, "{}: instruction count drifted", kind.name());
        assert_eq!(l, loads, "{}: load count drifted", kind.name());
        assert_eq!(s, stores, "{}: store count drifted", kind.name());
        assert_eq!(t, time_ps, "{}: timing drifted", kind.name());
    }
}

#[test]
fn traces_differ_across_kernels() {
    // Sanity on the golden table itself: no two kernels share a signature.
    for (i, a) in GOLDEN.iter().enumerate() {
        for b in &GOLDEN[i + 1..] {
            assert_ne!(a.1, b.1, "{:?} vs {:?}", a.0, b.0);
        }
    }
}
