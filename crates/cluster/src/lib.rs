//! Rack-level computational sprinting: many servers, one thermal pool.
//!
//! The paper sprints one die against its own package. This crate lifts
//! the same regime to a data-center rack, following Porto et al.
//! ("Making data center computations fast, but not so furious"): whole
//! *servers* sprint against shared thermal headroom, and a cluster-level
//! scheduler decides **which** nodes may sprint and in what order they
//! are shed when the shared pool runs low — the generalization of the
//! per-die `HotspotPolicy::ShedCores` throttle from shed *count* to
//! shed *order*.
//!
//! # Architecture: the rack as a floorplan
//!
//! The rack thermal model *is* the die model, re-provisioned
//! (`GridThermalParams::rack` in `sprint-thermal`): a floorplan with
//! one "core" rectangle per **server** over a shared-airflow plenum
//! layer, integrated by the ADI solver (whose sub-step is independent
//! of the grid resolution — rack grids are exactly why that solver
//! exists, and with no PCM in the stack every ADI line factorization is
//! cached). No new physics was written for racks; one grid, one solver,
//! one floorplan abstraction serve both scales.
//!
//! Sessions plug into the shared grid through the `ThermalModel` *port*
//! (`sprint-core`): each node's [`rack::NodeThermalView`] maps its
//! session's power onto its own floorplan rectangle and reports its own
//! hottest cell — not the rack-global one — as the junction, with the
//! node's *regional* energy budget feeding that session's controller.
//! A node therefore sprints against its own silicon while the shared
//! plenum silently couples everyone's headroom: rack contention reaches
//! each node through physics, not through scheduler bookkeeping.
//!
//! # The electrical pool: the same pattern, through the supply port
//!
//! Power delivery (paper Section 6) gets the *exact same treatment*
//! through the `PowerSupply` port: one [`supply::RackSupply`] pool
//! (PDU/busbar cap plus a stored-energy ride-through reserve) hands out
//! per-node [`supply::NodeSupplyView`]s, each behind a
//! `sprint_core::supply::Regulator` whose load-dependent efficiency
//! curve makes the pool pay `demand / η(load)`. The
//! nameplate-vs-telemetry split mirrors the thermal one symmetrically:
//!
//! * a view advertises only the node's **nameplate share** of the feed
//!   (`cap / nodes`, captured at commissioning) — node governors carry
//!   no bus telemetry, so an unmanaged rack sprints into the drained
//!   reserve and browns out, exactly as nameplate thermal budgets
//!   sprint into exhausted shared headroom;
//! * the **live** pool state (total upstream draw, feed headroom,
//!   reserve level) belongs to the cluster scheduler, which rations it
//!   through [`policy::PowerPolicy`]: admission books each sprint
//!   against the feed, denial defers the task under the same
//!   sprint-or-defer machinery as thermal denial, and a power
//!   emergency sheds the biggest drawers first through the same
//!   shed-order mechanism.
//!
//! On top sit the scheduler pieces:
//!
//! * [`policy::ClusterPolicy`] — admission (may this task sprint
//!   here?), allowance (how many nodes may sprint at this rack
//!   headroom?) and shed order (who is preempted first?): greedy
//!   headroom, round-robin, competitive duplication, plus the
//!   all-sprint / no-sprint baselines.
//! * [`policy::PowerPolicy`] — the power axis of admission: oblivious
//!   (thermal-only, the brownout baseline) or rationed against the
//!   shared feed.
//! * [`queue::ClusterTask`] / [`queue::TaskOutcome`] — the arrival
//!   queue over the `sprint-workloads` suite (open arrivals included;
//!   `ClusterReport` carries mean/p95/max latency for them).
//! * [`cluster::ClusterSession`] — the lockstep stepper: one
//!   `SprintSession` per node, one shared rack, one shared feed, one
//!   scheduler pass per sampling window. A one-node cluster reproduces
//!   a standalone session byte-for-byte — on an uncapped supply *and*
//!   on a rechargeable per-node `HybridSupply` (idle windows recharge
//!   through the lockstep rest path).
//!
//! # Two steppers, one semantics
//!
//! The crate ships two executions of the same simulation.
//!
//! The **lockstep stepper** ([`cluster::ClusterSession`]) advances
//! every node every window — simple, obviously correct, and `O(fleet)`
//! per window regardless of how many nodes are actually doing
//! anything. It is the **golden oracle**: the definition of what a
//! configuration computes.
//!
//! The **event-driven core** ([`event::EventDrivenCluster`]) wraps a
//! fresh lockstep session and restructures the run as a discrete-event
//! scheduler. Each *component* — task arrivals, the admission
//! scheduler, the rack settlement leader, each node session — exposes
//! its next thermally- or electrically-relevant window as a tick on a
//! time-ordered heap keyed `(window, component kind, node index)`, so
//! simultaneous ticks pop in the lockstep phase order and the run is
//! deterministic. The settlement leader still executes every window
//! (the per-window ADI grid integration is bitwise irreducible); what
//! the event core elides is the bookkeeping *around* the physics —
//! idle nodes sleep until observed, then replay their private rest
//! effects verbatim (same calls, same order, same floating-point
//! sequence), and the scheduler ticks only on windows where its passes
//! could observe or mutate anything.
//!
//! The contract between the two is not "close enough": an event-driven
//! run must reproduce the lockstep [`cluster::ClusterReport`] digest
//! **byte for byte** on the same configuration. The equivalence tests
//! (`tests/event_core.rs` here, the sharded-facility digests in
//! `sprint-facility`) and the `perfbench --check` perf gate pin that
//! invariant; see the [`event`] module docs for the component model in
//! detail.
//!
//! # Fault injection and graceful degradation
//!
//! Every node's thermal and supply ports are wrapped in
//! `sprint-core`'s fault ports (`FaultSensor` / `FaultSupply`) —
//! bit-identical passthroughs until a window-stamped
//! `sprint_core::fault::FaultPlan` (installed via
//! [`cluster::ClusterBuilder::fault_plan`]) flips them. The scheduler
//! *degrades instead of corrupting*: a faulted sensor reads as
//! already-at-the-limit under `FaultResponse::Aware` (conservative
//! treat-as-hot failsafe, mid-sprint preemption included), a crashed
//! node's in-flight task re-enters the queue with a bounded retry
//! budget and exponential window backoff, mid-task crashes quarantine
//! the node and return its nameplate share to the rack pool
//! ([`supply::RackSupply::decommission_node`]), and
//! [`cluster::ClusterReport`] accounts every submitted task as
//! completed, failed-after-retries, or outstanding — never lost
//! ([`cluster::ClusterReport::task_conservation_holds`]). Faults are
//! ticks on the event core's heap, so faulted event-driven runs stay
//! byte-identical to the lockstep oracle.
//!
//! # Heterogeneous fleets: per-node specs, task classes, placement
//!
//! Nothing above assumes the rack is a clone-farm. A fleet is described
//! by one [`cluster::NodeSpec`] per node — its machine config (big or
//! little core counts, frequencies), its **nameplate share weight**
//! (commissioning-time fraction of the feed: the supply pool cuts
//! `cap · wᵢ / Σw_alive` per node and re-cuts on decommission), and its
//! **thermal-footprint weight** (the floorplan scales that node's rect
//! area about its center, so a big node occupies more die and couples
//! more heat into the plenum). A homogeneous `NodeSpec` fleet is
//! **byte-for-byte identical** to the legacy single-config clone path:
//! unit weights cut the feed with the exact same arithmetic and a
//! footprint factor of 1.0 never touches the floorplan.
//!
//! Tasks carry classes ([`queue::ClusterTask::with_min_cores`] affinity
//! and a [`queue::ClusterTask::not_duplicable`] flag), and admission
//! gains a cost-aware pass ([`cluster::Placement::CheapestHeadroom`])
//! that ranks idle nodes by affinity fit, then thermal + electrical
//! headroom cost; the default [`cluster::Placement::PolicyDefault`]
//! keeps the pre-refactor coolest-first order bit-for-bit.
//!
//! Competitive duplication closes the loop: with
//! `CompetitiveDuplicate { cancel_losers: true, .. }` the first replica
//! to finish wins and the losers are **preempted in the same window**
//! the winner commits (`SprintSession::cancel_workload` →
//! `Machine::cancel_all`), returning their nodes to the idle pool
//! instead of burning the duplicate to completion. Cancelled copies are
//! reported in [`cluster::ClusterReport::cancelled_copies`], and the
//! event core stays digest-identical to the lockstep oracle under
//! duplication *and* cancellation.
//!
//! # Quick start
//!
//! ```
//! use sprint_cluster::prelude::*;
//! use sprint_thermal::grid::GridThermalParams;
//! use sprint_workloads::suite::{InputSize, WorkloadKind};
//!
//! // A 2x2 rack (compressed 3000x so the doc-test is instant) under
//! // greedy-headroom admission, fed four sobel bursts.
//! let mut cluster = ClusterBuilder::new(GridThermalParams::rack(2, 2).time_scaled(3000.0))
//!     .policy(ClusterPolicy::greedy_default())
//!     .tasks(ClusterTask::batch(WorkloadKind::Sobel, InputSize::A, 8, 4))
//!     .build();
//! assert_eq!(cluster.run_to_completion(), ClusterOutcome::Drained);
//! let report = cluster.report();
//! assert_eq!(report.completed, 4);
//! assert!(report.makespan_s > 0.0);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod event;
pub mod policy;
pub mod queue;
pub mod rack;
pub mod supply;

pub use cluster::{
    ClusterBuildError, ClusterBuilder, ClusterEvent, ClusterOutcome, ClusterReport, ClusterSession,
    NodeSpec, Placement,
};
pub use event::EventDrivenCluster;
pub use policy::{ClusterPolicy, PowerPolicy};
pub use queue::{ClusterTask, TaskOutcome};
pub use rack::{NodeThermalView, RackThermal};
pub use supply::{NodeSupplyView, RackSupply, RackSupplyParams};

/// Commonly-used items in one import.
pub mod prelude {
    pub use crate::cluster::{
        ClusterBuildError, ClusterBuilder, ClusterEvent, ClusterOutcome, ClusterReport,
        ClusterSession, NodeSpec, Placement,
    };
    pub use crate::event::EventDrivenCluster;
    pub use crate::policy::{ClusterPolicy, PowerPolicy};
    pub use crate::queue::{ClusterTask, TaskOutcome};
    pub use crate::rack::{NodeThermalView, RackThermal};
    pub use crate::supply::{NodeSupplyView, RackSupply, RackSupplyParams};
}
