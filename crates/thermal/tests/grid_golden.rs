//! Golden-trace regression test for the grid solver, mirroring the
//! workloads golden table: a small fixed grid driven by a fixed power
//! schedule must reproduce its checkpoint values exactly. The solver
//! uses only `f64` add/mul/div (no transcendentals), so the trace is
//! bit-stable across platforms; any diff here means the integration
//! scheme changed and intentional changes must update the table.

use sprint_thermal::floorplan::Floorplan;
use sprint_thermal::grid::{GridLayer, GridSolver, GridThermalParams, LayerPhase};

/// A 2x2, three-layer stack with one off-center core: small enough to
/// eyeball, asymmetric enough to exercise lateral conduction, melting
/// and the ambient sink.
fn golden_params() -> GridThermalParams {
    GridThermalParams {
        ambient_c: 25.0,
        t_max_c: 70.0,
        nx: 2,
        ny: 2,
        floorplan: Floorplan::new(1.0, 1.0).with_core("hot", 0.0, 0.0, 0.5, 0.5),
        layers: vec![
            GridLayer::sensible("die", 0.02, 10.0, 0.5),
            GridLayer::pcm(
                "pcm",
                0.08,
                50.0,
                20.0,
                LayerPhase {
                    melt_temp_c: 60.0,
                    latent_heat_j: 4.0,
                    liquid_capacity_j_per_k: 0.08,
                },
            ),
            GridLayer::sensible("spreader", 2.0, 5.0, 1.0),
        ],
        r_sink_ambient_k_per_w: 2.0,
        stability_fraction: 0.2,
        // The golden table pins the explicit scheme's bit pattern.
        solver: GridSolver::Explicit,
        solver_threads: 1,
        adi_explicit_fallback: true,
    }
}

/// `(time_s, junction_c, mean_die_c, melt_fraction, absorbed_j)` after
/// each 0.25 s checkpoint of the schedule below.
const GOLDEN: [(f64, f64, f64, f64, f64); 6] = [
    (
        0.25,
        73.582292729242,
        52.403659639694,
        0.135994386714,
        0.003208818470,
    ),
    (
        0.50,
        101.127537524705,
        72.165086200404,
        0.295950942629,
        0.022746082938,
    ),
    (
        0.75,
        62.231253900441,
        60.304675020799,
        0.367293651013,
        0.068869680107,
    ),
    (
        1.00,
        59.926992104468,
        59.422650382400,
        0.280824801363,
        0.138856305012,
    ),
    (
        1.25,
        70.180148792125,
        63.014961319433,
        0.298866732067,
        0.230442375889,
    ),
    (
        1.50,
        71.652680686534,
        63.633961896890,
        0.359154952242,
        0.343413194087,
    ),
];

/// The fixed schedule: a 12 W burst, a rest, then a 3 W sustained tail.
fn power_at(t: f64) -> f64 {
    if t < 0.5 {
        12.0
    } else if t < 1.0 {
        0.0
    } else {
        3.0
    }
}

fn run_checkpoints() -> Vec<(f64, f64, f64, f64, f64)> {
    let mut g = golden_params().build();
    let mut out = Vec::new();
    for step in 0..6 {
        let t0 = step as f64 * 0.25;
        g.set_chip_power_w(power_at(t0));
        g.advance(0.25);
        out.push((
            g.time_s(),
            g.junction_temp_c(),
            g.mean_die_temp_c(),
            g.melt_fraction(),
            g.boundary_absorbed_j(),
        ));
    }
    out
}

#[test]
fn grid_golden_trace_is_stable() {
    for (got, want) in run_checkpoints().iter().zip(GOLDEN.iter()) {
        assert!(
            (got.0 - want.0).abs() < 1e-12
                && (got.1 - want.1).abs() < 1e-9
                && (got.2 - want.2).abs() < 1e-9
                && (got.3 - want.3).abs() < 1e-9
                && (got.4 - want.4).abs() < 1e-9,
            "checkpoint drifted:\n got {got:?}\nwant {want:?}"
        );
    }
}

/// Prints the table in source form — run with
/// `cargo test -p sprint-thermal --test grid_golden -- --ignored --nocapture`
/// after an intentional solver change, and paste the output over
/// `GOLDEN`.
#[test]
#[ignore]
fn regenerate_golden_table() {
    for c in run_checkpoints() {
        println!(
            "    ({:.2}, {:.12}, {:.12}, {:.12}, {:.12}),",
            c.0, c.1, c.2, c.3, c.4
        );
    }
}
