//! Solver performance figure: explicit vs ADI wall-clock across grid
//! resolutions on the `hpca_like` three-layer stack, driven through one
//! sprint-and-rest cycle.
//!
//! The explicit solver's stability sub-step shrinks with the cell time
//! constant, so its cost grows `O(n^4)` with an `n x n` die grid; the
//! ADI solver's sub-step is pinned by the (resolution-independent)
//! vertical time constant, so its cost grows only `O(n^2)`. This module
//! measures both on the same power schedule, records the junction-
//! temperature disagreement as the matched-accuracy check, and writes
//! the trajectory to `BENCH_grid.json` at the repository root so the
//! perf history is versioned alongside the code.

use std::path::PathBuf;
use std::time::Instant;

use sprint_cluster::prelude::*;
use sprint_core::config::SprintConfig;
use sprint_thermal::grid::{GridSolver, GridThermal, GridThermalParams};
use sprint_workloads::suite::{InputSize, WorkloadKind};

use crate::output::{Csv, TextTable};

/// Sprint power of the perf cycle, watts (the paper's 16x TDP burst).
pub const SPRINT_W: f64 = 16.0;
/// Sprint phase duration, seconds.
pub const SPRINT_S: f64 = 0.35;
/// Rest phase duration, seconds.
pub const REST_S: f64 = 0.65;
/// Junction sampling cadence, seconds (also the `advance` call size,
/// i.e. the co-simulation window a session would use).
pub const SAMPLE_DT_S: f64 = 0.005;

/// One resolution's explicit-vs-ADI measurement.
#[derive(Debug, Clone)]
pub struct PerfCase {
    /// Grid edge (the die is `n x n`).
    pub n: usize,
    /// Total cell count (`n * n * layers`).
    pub cells: usize,
    /// Explicit wall-clock for the cycle, milliseconds.
    pub explicit_ms: f64,
    /// ADI wall-clock for the cycle, milliseconds.
    pub adi_ms: f64,
    /// `explicit_ms / adi_ms`.
    pub speedup: f64,
    /// Largest junction-temperature disagreement over the cycle, K.
    pub max_dev_k: f64,
    /// Explicit stability sub-step, seconds.
    pub explicit_sub_step_s: f64,
    /// ADI accuracy sub-step, seconds.
    pub adi_sub_step_s: f64,
}

/// Drives one sprint-and-rest cycle, returning wall-clock milliseconds
/// and the junction samples.
fn drive(g: &mut GridThermal) -> (f64, Vec<f64>) {
    let steps = ((SPRINT_S + REST_S) / SAMPLE_DT_S).round() as usize;
    let mut samples = Vec::with_capacity(steps);
    let start = Instant::now();
    for k in 0..steps {
        let t = k as f64 * SAMPLE_DT_S;
        g.set_chip_power_w(if t < SPRINT_S { SPRINT_W } else { 0.0 });
        g.advance(SAMPLE_DT_S);
        samples.push(g.junction_temp_c());
    }
    (start.elapsed().as_secs_f64() * 1e3, samples)
}

/// Measures one resolution (both solvers, same schedule).
pub fn run_case(n: usize) -> PerfCase {
    let params = GridThermalParams::hpca_like().with_grid(n, n);
    let mut explicit = params.clone().with_solver(GridSolver::Explicit).build();
    let mut adi = params.with_solver(GridSolver::Adi).build();
    let cells = explicit.cells_per_layer() * explicit.layer_count();
    let (explicit_ms, reference) = drive(&mut explicit);
    let (adi_ms, candidate) = drive(&mut adi);
    let max_dev_k = reference
        .iter()
        .zip(&candidate)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    PerfCase {
        n,
        cells,
        explicit_ms,
        adi_ms,
        speedup: explicit_ms / adi_ms,
        max_dev_k,
        explicit_sub_step_s: explicit.sub_step_s(),
        adi_sub_step_s: adi.adi_sub_step_s(),
    }
}

/// Measures every resolution in `resolutions`.
pub fn run_cases(resolutions: &[usize]) -> Vec<PerfCase> {
    resolutions.iter().map(|&n| run_case(n)).collect()
}

/// The rack-scale point: a 4x4-server rack (32x32 grid, two PCM-free
/// layers — every ADI line factorization is cached) through the same
/// sprint-and-rest cycle shape, with a quarter of the nodes sprinting
/// at 16 W over a 1 W sustained floor. ADI is always measured (it is
/// what makes this scale practical); the explicit reference is
/// optional because at rack resolution it costs seconds per cycle —
/// which is the point the comparison makes.
#[derive(Debug, Clone)]
pub struct RackPerfCase {
    /// Servers on the rack floorplan.
    pub nodes: usize,
    /// Grid edge (the rack floor is `n x n`).
    pub n: usize,
    /// Total cell count.
    pub cells: usize,
    /// ADI wall-clock for the cycle, milliseconds.
    pub adi_ms: f64,
    /// ADI accuracy sub-step, seconds.
    pub adi_sub_step_s: f64,
    /// Explicit wall-clock, milliseconds (measured with `--full` only).
    pub explicit_ms: Option<f64>,
    /// `explicit_ms / adi_ms` when the reference was measured.
    pub speedup: Option<f64>,
}

/// Drives the rack power pattern for one cycle: nodes 0..nodes/4
/// sprint at 16 W during the sprint phase, everyone else holds a 1 W
/// sustained floor throughout.
fn drive_rack(g: &mut GridThermal, nodes: usize) -> f64 {
    let steps = ((SPRINT_S + REST_S) / SAMPLE_DT_S).round() as usize;
    let sprinters = (nodes / 4).max(1);
    let start = Instant::now();
    for k in 0..steps {
        let t = k as f64 * SAMPLE_DT_S;
        let sprinting = t < SPRINT_S;
        for node in 0..nodes {
            let w = if sprinting && node < sprinters {
                SPRINT_W
            } else {
                1.0
            };
            g.set_core_power_w(node, w);
        }
        g.advance(SAMPLE_DT_S);
        std::hint::black_box(g.junction_temp_c());
    }
    start.elapsed().as_secs_f64() * 1e3
}

/// The threaded-solver point: the same sprint-and-rest rack cycle on a
/// big (8x8-server, 64x64-cell) PCM-free rack, integrated serially and
/// with the line sweeps fanned across 2 and 8 solver threads. The
/// determinism contract is asserted inside the measurement: all three
/// runs must land on the same state digest, or the bench aborts —
/// wall-clock is a claim about *identical* results or it is nothing.
#[derive(Debug, Clone)]
pub struct ThreadedRackPerfCase {
    /// Servers on the rack floorplan.
    pub nodes: usize,
    /// Grid edge.
    pub n: usize,
    /// Total cell count.
    pub cells: usize,
    /// CPUs the host reports (`available_parallelism`); the `--check`
    /// wall-clock floor only applies when there are enough of them.
    pub cpus: usize,
    /// Wall-clock at 1 solver thread (the serial engine), milliseconds.
    pub serial_ms: f64,
    /// Wall-clock at 2 solver threads, milliseconds.
    pub threads2_ms: f64,
    /// Wall-clock at 8 solver threads, milliseconds.
    pub threads8_ms: f64,
    /// `serial_ms / min(threads2_ms, threads8_ms)` — the gated speedup.
    pub speedup: f64,
    /// FNV-1a digest of the final thermal state; identical across all
    /// three lane counts by assertion.
    pub digest: u64,
}

/// FNV-1a over every cell temperature, the boundary ledger and the
/// junction — the bitwise identity the threaded engine promises.
fn rack_state_digest(g: &GridThermal) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let put = |h: &mut u64, bits: u64| {
        for b in bits.to_le_bytes() {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for layer in 0..g.layer_count() {
        for y in 0..g.params().ny {
            for x in 0..g.params().nx {
                put(&mut h, g.cell_temp_c(layer, x, y).to_bits());
            }
        }
    }
    put(&mut h, g.boundary_absorbed_j().to_bits());
    put(&mut h, g.junction_temp_c().to_bits());
    h
}

/// Measures the threaded-solver point (see [`ThreadedRackPerfCase`]).
pub fn run_threaded_rack_case() -> ThreadedRackPerfCase {
    let params = GridThermalParams::rack(8, 8);
    let nodes = params.floorplan.core_count();
    let n = params.nx;
    let mut wall_ms = [0.0f64; 3];
    let mut cells = 0;
    let mut digest = 0u64;
    for (slot, &threads) in [1usize, 2, 8].iter().enumerate() {
        let mut g = params.clone().with_solver_threads(threads).build();
        cells = g.cells_per_layer() * g.layer_count();
        wall_ms[slot] = drive_rack(&mut g, nodes);
        let d = rack_state_digest(&g);
        if slot == 0 {
            digest = d;
        } else {
            assert_eq!(
                d, digest,
                "threaded rack state diverged from serial at {threads} lanes"
            );
        }
    }
    let best = wall_ms[1].min(wall_ms[2]);
    ThreadedRackPerfCase {
        nodes,
        n,
        cells,
        cpus: std::thread::available_parallelism().map_or(1, |p| p.get()),
        serial_ms: wall_ms[0],
        threads2_ms: wall_ms[1],
        threads8_ms: wall_ms[2],
        speedup: wall_ms[0] / best,
        digest,
    }
}

/// Measures the rack-scale point (see [`RackPerfCase`]).
pub fn run_rack_case(measure_explicit: bool) -> RackPerfCase {
    let params = GridThermalParams::rack(4, 4);
    let nodes = params.floorplan.core_count();
    let n = params.nx;
    let mut adi = params.clone().with_solver(GridSolver::Adi).build();
    let cells = adi.cells_per_layer() * adi.layer_count();
    let adi_ms = drive_rack(&mut adi, nodes);
    let (explicit_ms, speedup) = if measure_explicit {
        let mut explicit = params.with_solver(GridSolver::Explicit).build();
        let ms = drive_rack(&mut explicit, nodes);
        (Some(ms), Some(ms / adi_ms))
    } else {
        (None, None)
    };
    RackPerfCase {
        nodes,
        n,
        cells,
        adi_ms,
        adi_sub_step_s: adi.adi_sub_step_s(),
        explicit_ms,
        speedup,
    }
}

/// The power-aware rack point: the full scheduler loop — per-window
/// machine simulation, ADI rack thermals, shared-supply settlement,
/// regulator math and joint thermal+power admission — on the 16-node
/// rack, measured end to end. This is the configuration the
/// `rack_power` figure runs at scale; the perf point keeps the
/// supply-accounting overhead honest (it must stay a rounding error
/// next to the thermal solve).
#[derive(Debug, Clone)]
pub struct RackPowerPerfCase {
    /// Human-readable configuration label, derived from the measured
    /// cluster (rack size, feed cap) so the perf history can never
    /// mislabel what was benchmarked.
    pub stack: String,
    /// Servers on the rack.
    pub nodes: usize,
    /// Open-arrival tasks drained.
    pub tasks: usize,
    /// Lockstep windows stepped.
    pub windows: u64,
    /// Wall-clock for the drain, milliseconds.
    pub wall_ms: f64,
    /// Wall-clock per lockstep window, microseconds.
    pub us_per_window: f64,
    /// Tasks drained per wall-clock second — the scheduler loop's
    /// end-to-end throughput, gated by `perfbench --check`.
    pub tasks_per_s: f64,
    /// Electrical sprint casualties (must be zero under rationing).
    pub supply_aborts: usize,
    /// Fault events applied (must be zero: no perf point runs a fault
    /// plan, and the always-on fault ports must stay inert).
    pub fault_events: usize,
    /// Tasks failed to crashes (must be zero, same reason).
    pub failed_tasks: usize,
}

/// Measures the power-aware rack point (see [`RackPowerPerfCase`]).
/// The cluster is the figure's own configuration
/// ([`crate::figs_rack::power_study_cluster`]) at a reduced task
/// count, so retuning the figure retunes this point with it.
pub fn run_rack_power_case() -> RackPowerPerfCase {
    const TASKS: usize = 12;
    let mut cluster = crate::figs_rack::power_study_cluster(PowerPolicy::rationed_default(), TASKS);
    let start = Instant::now();
    let outcome = cluster.run_to_completion();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        outcome,
        ClusterOutcome::Drained,
        "the perf point must drain its queue"
    );
    let report = cluster.report();
    let cap_w = cluster
        .supply()
        .expect("the power study runs on a shared feed")
        .cap_w();
    RackPowerPerfCase {
        stack: format!(
            "rack {} servers, shared {cap_w:.0} W feed, power-aware admission",
            cluster.nodes()
        ),
        nodes: cluster.nodes(),
        tasks: TASKS,
        windows: cluster.windows(),
        wall_ms,
        us_per_window: wall_ms * 1e3 / cluster.windows() as f64,
        tasks_per_s: TASKS as f64 * 1e3 / wall_ms,
        supply_aborts: report.supply_aborts,
        fault_events: report.fault_events,
        failed_tasks: report.failed_tasks,
    }
}

/// The facility-scale point: a 4-rack facility (64 servers, shared CRAC
/// rows, a globally rationed feed) through the full settlement loop —
/// sharded rack advancement, row-inlet coupling and cross-rack cap
/// settlement on top of everything the rack-power point measures. The
/// configuration is the facility figure's own
/// ([`crate::figs_facility::study_facility`]) at a reduced rack and
/// task count, so retuning the figure retunes this point with it.
#[derive(Debug, Clone)]
pub struct FacilityPerfCase {
    /// Human-readable configuration label, derived from the measured
    /// facility so the perf history can never mislabel what ran.
    pub stack: String,
    /// Racks in the facility.
    pub racks: usize,
    /// Servers per rack.
    pub nodes_per_rack: usize,
    /// Open-arrival tasks drained across the facility.
    pub tasks: usize,
    /// Settlement epochs run.
    pub epochs: u64,
    /// Wall-clock for the drain, milliseconds.
    pub wall_ms: f64,
    /// Tasks drained per wall-clock second — the headline facility
    /// throughput, gated by `perfbench --check`.
    pub tasks_per_s: f64,
    /// Electrical sprint casualties (must stay zero: the global tier
    /// only ever re-divides what the feed can carry).
    pub supply_aborts: usize,
    /// Fault events applied (must be zero on the fault-free perf
    /// point — the inert-wrapper guarantee, gated by `--check`).
    pub fault_events: usize,
    /// Tasks failed to crashes (must be zero, same reason).
    pub failed_tasks: usize,
}

/// Measures the facility-scale point (see [`FacilityPerfCase`]).
pub fn run_facility_case() -> FacilityPerfCase {
    const RACKS: usize = 4;
    const TASKS: usize = 120;
    const SHARE_W: f64 = 40.0;
    let facility = crate::figs_facility::study_facility(
        sprint_facility::FacilityPolicy::GlobalRationed {
            floor_w: crate::figs_facility::FACILITY_FLOOR_W,
            slot_w: crate::figs_facility::FACILITY_SLOT_W,
        },
        SHARE_W,
        RACKS,
        TASKS,
    );
    let threads = crate::figs_facility::facility_threads();
    let start = Instant::now();
    let report = facility.run(threads);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(report.all_drained, "the facility perf point must drain");
    assert_eq!(report.completed, TASKS);
    let nodes_per_rack = report.rack_reports[0].node_reports.len();
    FacilityPerfCase {
        stack: format!(
            "facility {RACKS} racks x {nodes_per_rack} servers, globally rationed \
             {:.0} W feed, row CRAC coupling",
            SHARE_W * RACKS as f64
        ),
        racks: report.racks,
        nodes_per_rack,
        tasks: TASKS,
        epochs: report.epochs,
        wall_ms,
        tasks_per_s: TASKS as f64 * 1e3 / wall_ms,
        supply_aborts: report.supply_aborts,
        fault_events: report.fault_events,
        failed_tasks: report.failed_tasks,
    }
}

/// The event-core point: the same sparse open-arrival drain stepped
/// twice — once through the lockstep golden oracle, once through the
/// event-driven core — on a rack big enough (4096 servers) that idle
/// nodes dominate the lockstep bill. The event core must reproduce the
/// oracle's [`ClusterReport`] digest byte for byte; the wall-clock
/// ratio is the tentpole claim `perfbench --check` gates at 5x.
#[derive(Debug, Clone)]
pub struct EventCorePerfCase {
    /// Human-readable configuration label, derived from the measured
    /// cluster so the perf history can never mislabel what ran.
    pub stack: String,
    /// Servers on the rack.
    pub nodes: usize,
    /// Open-arrival tasks drained.
    pub tasks: usize,
    /// Windows stepped (identical for both cores by construction).
    pub windows: u64,
    /// Lockstep (oracle) wall-clock for the drain, milliseconds.
    pub lockstep_ms: f64,
    /// Event-driven wall-clock for the same drain, milliseconds.
    pub event_ms: f64,
    /// `lockstep_ms / event_ms` — the gated speedup.
    pub speedup: f64,
    /// The shared report digest (both cores produced this value; the
    /// measurement asserts equality before recording it).
    pub digest: u64,
}

/// Rack edge (servers per side) for the event-core point.
const EVENT_EDGE: usize = 64;
/// Open-arrival tasks for the event-core point.
const EVENT_TASKS: usize = 2;
/// Arrival spacing, seconds — sparse enough that all-idle windows
/// dominate, which is the regime the event core exists for.
const EVENT_SPACING_S: f64 = 8_000e-6;
/// Thermal/supply time compression for the event-core point.
const EVENT_COMPRESS: f64 = 6000.0;

/// Builds the event-core cluster: a 64x64-server rack on a coarse 8x8
/// ADI grid (the per-window solve must stay cheap enough that the
/// *fleet bookkeeping*, not the physics, is what lockstep wastes time
/// on), rationed power-aware admission over a shared feed, and two
/// sobel bursts 8 ms apart.
fn event_core_cluster() -> ClusterSession {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 8.0;
    let nodes = EVENT_EDGE * EVENT_EDGE;
    ClusterBuilder::new(
        GridThermalParams::rack(EVENT_EDGE, EVENT_EDGE)
            .with_grid(8, 8)
            .time_scaled(EVENT_COMPRESS),
    )
    .policy(ClusterPolicy::greedy_default())
    .power_policy(PowerPolicy::rationed_default())
    .rack_supply(RackSupplyParams::rack(nodes).time_scaled(EVENT_COMPRESS))
    .config(cfg)
    .tasks(ClusterTask::arrivals(
        WorkloadKind::Sobel,
        InputSize::A,
        16,
        EVENT_TASKS,
        0.0,
        EVENT_SPACING_S,
    ))
    .trace_capacity(0)
    .build()
}

/// Measures the event-core point (see [`EventCorePerfCase`]): the
/// lockstep oracle and the event core drain identical clusters, the
/// digests must match byte for byte, and the speedup is recorded.
pub fn run_event_core_case() -> EventCorePerfCase {
    let mut lockstep = event_core_cluster();
    let start = Instant::now();
    let outcome = lockstep.run_to_completion();
    let lockstep_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        outcome,
        ClusterOutcome::Drained,
        "the event-core oracle run must drain its queue"
    );
    let mut event = EventDrivenCluster::new(event_core_cluster());
    let start = Instant::now();
    let outcome = event.run_to_completion();
    let event_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        outcome,
        ClusterOutcome::Drained,
        "the event-core run must drain its queue"
    );
    // The equivalence contract is byte-for-byte, so a mismatch is a
    // correctness bug — fail the whole bench rather than record a
    // speedup for a core that computed something else.
    assert_eq!(lockstep.windows(), event.windows(), "window counts differ");
    let digest = lockstep.report().digest();
    assert_eq!(
        digest,
        event.report().digest(),
        "event core diverged from the lockstep oracle"
    );
    let nodes = lockstep.nodes();
    EventCorePerfCase {
        stack: format!("rack {nodes} servers, sparse arrivals, event core vs lockstep oracle"),
        nodes,
        tasks: EVENT_TASKS,
        windows: lockstep.windows(),
        lockstep_ms,
        event_ms,
        speedup: lockstep_ms / event_ms,
        digest,
    }
}

/// The heterogeneous-fleet point: the `repro hetero` study's degraded
/// big/little rack (per-node [`sprint_cluster::NodeSpec`]s,
/// cheapest-headroom placement, a seeded two-node crash plan) drained
/// twice on the event core — once under bounded retry-in-place, once
/// under competitive duplication with same-window loser cancellation.
/// The tail claim (`duplication beats retry-in-place on the p99 of a
/// degraded rack`) and its price (the extra feed draw) are both
/// recorded; `perfbench --check` gates the former.
#[derive(Debug, Clone)]
pub struct HeteroRackPerfCase {
    /// Human-readable configuration label.
    pub stack: String,
    /// Servers on the rack (2 big + 2 little).
    pub nodes: usize,
    /// Open-arrival tasks per policy run.
    pub tasks: usize,
    /// p99 latency under bounded retry-in-place, milliseconds.
    pub retry_p99_ms: f64,
    /// p99 latency under duplication + cancellation, milliseconds.
    pub dup_p99_ms: f64,
    /// `retry_p99_ms / dup_p99_ms` — the gated tail win.
    pub p99_gain: f64,
    /// Rack feed draw under retry-in-place, joules.
    pub retry_energy_j: f64,
    /// Rack feed draw under duplication + cancellation, joules.
    pub dup_energy_j: f64,
    /// `dup_energy_j / retry_energy_j - 1` — the quantified price of
    /// the duplication hedge after cancellation reclaims dead work.
    pub extra_draw_frac: f64,
    /// Losing replicas preempted the window their winner committed.
    pub cancelled_copies: usize,
    /// Crash retries paid by the retry-in-place run (must be nonzero —
    /// otherwise the fixture degraded nothing and the claim is empty).
    pub requeues: usize,
    /// Wall-clock for both runs, milliseconds.
    pub wall_ms: f64,
}

/// Measures the heterogeneous-fleet point (see [`HeteroRackPerfCase`]).
/// The fixture is the hetero figure's own
/// ([`crate::figs_hetero::degraded_cluster`]), so retuning the figure
/// retunes this point with it; the study-level invariants (drain,
/// conservation, crashes bite) are asserted inside `run_hetero_point`.
pub fn run_hetero_rack_case() -> HeteroRackPerfCase {
    use crate::figs_hetero::{run_hetero_point, HETERO_TASKS};
    let start = Instant::now();
    let retry = run_hetero_point(
        "retry-in-place",
        ClusterPolicy::greedy_default(),
        HETERO_TASKS,
    );
    let dup = run_hetero_point(
        "duplicate+cancel",
        ClusterPolicy::competitive_default(),
        HETERO_TASKS,
    );
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let retry_p99_ms = retry.report.p99_latency_s * 1e3;
    let dup_p99_ms = dup.report.p99_latency_s * 1e3;
    HeteroRackPerfCase {
        stack: "degraded hetero rack, 2 big + 2 little servers, duplication \
                + cancel vs retry-in-place"
            .to_string(),
        nodes: retry.report.node_reports.len(),
        tasks: HETERO_TASKS,
        retry_p99_ms,
        dup_p99_ms,
        p99_gain: retry_p99_ms / dup_p99_ms,
        retry_energy_j: retry.energy_j,
        dup_energy_j: dup.energy_j,
        extra_draw_frac: dup.energy_j / retry.energy_j - 1.0,
        cancelled_copies: dup.report.cancelled_copies,
        requeues: retry.report.requeues,
        wall_ms,
    }
}

/// Grid resolutions for a run: `--quick` trims to the CI pair, `--full`
/// adds the 64x64 rack-scale preview (explicit there is minutes of
/// wall-clock — the point the figure makes).
pub fn resolutions(quick: bool, full: bool) -> Vec<usize> {
    if quick {
        vec![8, 32]
    } else if full {
        vec![8, 16, 32, 64]
    } else {
        vec![8, 16, 32]
    }
}

/// Where the benchmark JSON lands. Full and default sweeps refresh the
/// versioned `BENCH_grid.json` baseline at the repository root (the
/// workspace directory two levels above this crate); `--quick` runs are
/// partial and machine-specific, so they go to scratch under `target/`
/// instead of clobbering the committed trajectory. `SPRINT_BENCH_OUT`
/// overrides either (the perf-smoke CI job pins its artifact path with
/// it).
pub fn bench_json_path(quick: bool) -> PathBuf {
    match std::env::var("SPRINT_BENCH_OUT") {
        Ok(p) => PathBuf::from(p),
        Err(_) if quick => PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_grid.quick.json"
        )),
        Err(_) => PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_grid.json"
        )),
    }
}

/// Serializes the cases to the `BENCH_grid.json` schema (hand-rolled:
/// the vendored serde is a no-op stand-in).
#[allow(clippy::too_many_arguments)]
pub fn bench_json(
    cases: &[PerfCase],
    rack: Option<&RackPerfCase>,
    threaded: Option<&ThreadedRackPerfCase>,
    rack_power: Option<&RackPowerPerfCase>,
    facility: Option<&FacilityPerfCase>,
    event_core: Option<&EventCorePerfCase>,
    hetero: Option<&HeteroRackPerfCase>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"grid_solver_perf\",\n");
    out.push_str("  \"stack\": \"hpca_like (die/pcm/spreader, 4x4 core floorplan)\",\n");
    out.push_str(&format!(
        "  \"cycle\": {{\"sprint_w\": {SPRINT_W}, \"sprint_s\": {SPRINT_S}, \"rest_s\": {REST_S}, \"sample_dt_s\": {SAMPLE_DT_S}}},\n"
    ));
    out.push_str("  \"cases\": [\n");
    for (k, c) in cases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"grid\": \"{n}x{n}x3\", \"n\": {n}, \"cells\": {cells}, \"threads\": 1, \
             \"explicit_ms\": {explicit_ms:.3}, \"adi_ms\": {adi_ms:.3}, \
             \"speedup\": {speedup:.2}, \"max_dev_k\": {max_dev_k:.4}, \
             \"explicit_sub_step_s\": {ex_sub:.3e}, \"adi_sub_step_s\": {adi_sub:.3e}}}{comma}\n",
            n = c.n,
            cells = c.cells,
            explicit_ms = c.explicit_ms,
            adi_ms = c.adi_ms,
            speedup = c.speedup,
            max_dev_k = c.max_dev_k,
            ex_sub = c.explicit_sub_step_s,
            adi_sub = c.adi_sub_step_s,
            comma = if k + 1 < cases.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]");
    // Optional sections, joined with ",\n" so the JSON stays valid for
    // any subset (the brace/comma discipline is pinned by tests).
    let mut sections: Vec<String> = Vec::new();
    if let Some(r) = rack {
        let explicit = match r.explicit_ms {
            Some(ms) => format!(", \"explicit_ms\": {ms:.3}"),
            None => String::new(),
        };
        let speedup = match r.speedup {
            Some(s) => format!(", \"speedup\": {s:.2}"),
            None => String::new(),
        };
        sections.push(format!(
            "  \"rack_case\": {{\"stack\": \"rack 4x4 servers (servers/plenum, PCM-free)\", \
             \"nodes\": {nodes}, \"grid\": \"{n}x{n}x2\", \"cells\": {cells}, \"threads\": 1, \
             \"adi_ms\": {adi_ms:.3}, \"adi_sub_step_s\": {adi_sub:.3e}{explicit}{speedup}}}",
            nodes = r.nodes,
            n = r.n,
            cells = r.cells,
            adi_ms = r.adi_ms,
            adi_sub = r.adi_sub_step_s,
        ));
    }
    if let Some(t) = threaded {
        sections.push(format!(
            "  \"threaded_rack_case\": {{\"stack\": \"rack 8x8 servers (servers/plenum, \
             PCM-free), threaded ADI sweeps\", \"nodes\": {nodes}, \"grid\": \"{n}x{n}x2\", \
             \"cells\": {cells}, \"cpus\": {cpus}, \"serial_ms\": {serial:.3}, \
             \"threads2_ms\": {t2:.3}, \"threads8_ms\": {t8:.3}, \"speedup\": {speedup:.2}, \
             \"digest\": \"{digest:016x}\"}}",
            nodes = t.nodes,
            n = t.n,
            cells = t.cells,
            cpus = t.cpus,
            serial = t.serial_ms,
            t2 = t.threads2_ms,
            t8 = t.threads8_ms,
            speedup = t.speedup,
            digest = t.digest,
        ));
    }
    if let Some(p) = rack_power {
        sections.push(format!(
            "  \"rack_power_case\": {{\"stack\": \"{stack}\", \"nodes\": {nodes}, \
             \"tasks\": {tasks}, \"windows\": {windows}, \"wall_ms\": {wall_ms:.3}, \
             \"us_per_window\": {uspw:.3}, \"tasks_per_s\": {tps:.2}, \
             \"supply_aborts\": {aborts}, \"fault_events\": {faults}, \
             \"failed_tasks\": {failed}}}",
            stack = p.stack,
            nodes = p.nodes,
            tasks = p.tasks,
            windows = p.windows,
            wall_ms = p.wall_ms,
            uspw = p.us_per_window,
            tps = p.tasks_per_s,
            aborts = p.supply_aborts,
            faults = p.fault_events,
            failed = p.failed_tasks,
        ));
    }
    if let Some(f) = facility {
        sections.push(format!(
            "  \"facility_case\": {{\"stack\": \"{stack}\", \"racks\": {racks}, \
             \"nodes_per_rack\": {npr}, \"tasks\": {tasks}, \"epochs\": {epochs}, \
             \"wall_ms\": {wall_ms:.3}, \"tasks_per_s\": {tps:.2}, \
             \"supply_aborts\": {aborts}, \"fault_events\": {faults}, \
             \"failed_tasks\": {failed}}}",
            stack = f.stack,
            racks = f.racks,
            npr = f.nodes_per_rack,
            tasks = f.tasks,
            epochs = f.epochs,
            wall_ms = f.wall_ms,
            tps = f.tasks_per_s,
            aborts = f.supply_aborts,
            faults = f.fault_events,
            failed = f.failed_tasks,
        ));
    }
    if let Some(e) = event_core {
        sections.push(format!(
            "  \"event_core_case\": {{\"stack\": \"{stack}\", \"nodes\": {nodes}, \
             \"tasks\": {tasks}, \"windows\": {windows}, \
             \"lockstep_ms\": {lockstep_ms:.3}, \"event_ms\": {event_ms:.3}, \
             \"speedup\": {speedup:.2}, \"digest\": \"{digest:016x}\"}}",
            stack = e.stack,
            nodes = e.nodes,
            tasks = e.tasks,
            windows = e.windows,
            lockstep_ms = e.lockstep_ms,
            event_ms = e.event_ms,
            speedup = e.speedup,
            digest = e.digest,
        ));
    }
    if let Some(h) = hetero {
        sections.push(format!(
            "  \"hetero_rack_case\": {{\"stack\": \"{stack}\", \"nodes\": {nodes}, \
             \"tasks\": {tasks}, \"retry_p99_ms\": {retry_p99:.3}, \
             \"dup_p99_ms\": {dup_p99:.3}, \"p99_gain\": {gain:.2}, \
             \"retry_energy_j\": {retry_j:.4}, \"dup_energy_j\": {dup_j:.4}, \
             \"extra_draw_frac\": {extra:.3}, \"cancelled_copies\": {cancelled}, \
             \"requeues\": {requeues}, \"wall_ms\": {wall_ms:.3}}}",
            stack = h.stack,
            nodes = h.nodes,
            tasks = h.tasks,
            retry_p99 = h.retry_p99_ms,
            dup_p99 = h.dup_p99_ms,
            gain = h.p99_gain,
            retry_j = h.retry_energy_j,
            dup_j = h.dup_energy_j,
            extra = h.extra_draw_frac,
            cancelled = h.cancelled_copies,
            requeues = h.requeues,
            wall_ms = h.wall_ms,
        ));
    }
    for s in &sections {
        out.push_str(",\n");
        out.push_str(s);
    }
    out.push_str("\n}\n");
    out
}

/// Everything one perf sweep measured, so a caller (the `perfbench
/// --check` gate) can judge *this run's* numbers rather than whatever
/// `BENCH_grid.json` happened to be on disk.
pub struct PerfRun {
    /// The explicit-vs-ADI resolution sweep.
    pub cases: Vec<PerfCase>,
    /// The threaded-vs-serial solver point (digest-checked).
    pub threaded: ThreadedRackPerfCase,
    /// The power-aware rack scheduler point.
    pub rack_power: RackPowerPerfCase,
    /// The facility settlement-loop point.
    pub facility: FacilityPerfCase,
    /// The event-core vs lockstep-oracle point.
    pub event_core: EventCorePerfCase,
    /// The heterogeneous duplication-under-faults point.
    pub hetero: HeteroRackPerfCase,
    /// The rendered stdout report.
    pub report: String,
}

/// The perf figure: runs the sweep, writes `BENCH_grid.json` and
/// `results/fig_perf.csv`, and renders the stdout table.
pub fn fig_perf(quick: bool, full: bool) -> String {
    fig_perf_cases(quick, full).report
}

/// [`fig_perf`], handing back every measurement (see [`PerfRun`]).
pub fn fig_perf_cases(quick: bool, full: bool) -> PerfRun {
    let cases = run_cases(&resolutions(quick, full));
    let mut out =
        String::from("Grid solver performance — explicit vs ADI, one 16 W sprint-and-rest cycle\n");
    let mut table = TextTable::new();
    table.row(&[
        &"grid",
        &"cells",
        &"threads",
        &"explicit ms",
        &"adi ms",
        &"speedup",
        &"max |dT| K",
    ]);
    let mut csv = Csv::new(
        "fig_perf",
        &[
            "grid",
            "cells",
            "threads",
            "explicit_ms",
            "adi_ms",
            "speedup",
            "max_dev_k",
        ],
    );
    for c in &cases {
        let grid = format!("{n}x{n}x3", n = c.n);
        table.row(&[
            &grid,
            &c.cells,
            &1,
            &format!("{:.1}", c.explicit_ms),
            &format!("{:.1}", c.adi_ms),
            &format!("{:.1}x", c.speedup),
            &format!("{:.4}", c.max_dev_k),
        ]);
        csv.row(&[
            &grid,
            &c.cells,
            &1,
            &format!("{:.3}", c.explicit_ms),
            &format!("{:.3}", c.adi_ms),
            &format!("{:.2}", c.speedup),
            &format!("{:.4}", c.max_dev_k),
        ]);
    }
    out.push_str(&table.render());
    if let (Some(first), Some(last)) = (cases.first(), cases.last()) {
        out.push_str(&format!(
            "the explicit sub-step shrinks {:.0}x from {f}x{f} to {l}x{l} while the ADI\n\
             sub-step stays put — implicit sweeps decouple the step from the cell time\n\
             constant, so the speedup grows with resolution at sub-0.1 K accuracy.\n",
            first.explicit_sub_step_s / last.explicit_sub_step_s,
            f = first.n,
            l = last.n,
        ));
    }
    // The rack-scale point: PCM-free stack, so the cached tridiagonal
    // factorizations cover every ADI line (rows, columns and the
    // shared vertical stack). The explicit reference only runs under
    // --full — at this resolution it is seconds per cycle, which is
    // the cost the ADI solver removed.
    let rack = run_rack_case(full);
    match (rack.explicit_ms, rack.speedup) {
        (Some(ex), Some(s)) => out.push_str(&format!(
            "rack 4x4 ({nodes} servers, {n}x{n}x2, fully cached ADI): {adi:.1} ms vs \
             explicit {ex:.1} ms — {s:.1}x\n",
            nodes = rack.nodes,
            n = rack.n,
            adi = rack.adi_ms,
        )),
        _ => out.push_str(&format!(
            "rack 4x4 ({nodes} servers, {n}x{n}x2, fully cached ADI): {adi:.1} ms per \
             sprint-and-rest cycle\n",
            nodes = rack.nodes,
            n = rack.n,
            adi = rack.adi_ms,
        )),
    }
    // The threaded-solver point: the perf claim of the threaded line
    // sweeps, with the determinism contract (identical digests at 1, 2
    // and 8 lanes) asserted inside the measurement itself.
    let threaded = run_threaded_rack_case();
    out.push_str(&format!(
        "threaded rack 8x8 ({nodes} servers, {n}x{n}x2, {cpus} cpu(s)): serial \
         {serial:.1} ms, 2 threads {t2:.1} ms, 8 threads {t8:.1} ms — {speedup:.1}x, \
         digests identical\n",
        nodes = threaded.nodes,
        n = threaded.n,
        cpus = threaded.cpus,
        serial = threaded.serial_ms,
        t2 = threaded.threads2_ms,
        t8 = threaded.threads8_ms,
        speedup = threaded.speedup,
    ));
    // The power-aware rack point: the whole scheduler loop (machines +
    // ADI thermals + shared-supply settlement + joint admission), to
    // keep the supply accounting's overhead visible in the history.
    let rack_power = run_rack_power_case();
    out.push_str(&format!(
        "rack power ({nodes} servers, shared feed, power-aware): {tasks} tasks drained \
         in {wall:.0} ms wall ({uspw:.1} us/window, {tps:.1} tasks/s, {aborts} \
         electrical aborts)\n",
        nodes = rack_power.nodes,
        tasks = rack_power.tasks,
        wall = rack_power.wall_ms,
        uspw = rack_power.us_per_window,
        tps = rack_power.tasks_per_s,
        aborts = rack_power.supply_aborts,
    ));
    // The facility point: the whole settlement loop (sharded racks, row
    // coupling, cross-rack cap rationing) end to end.
    let facility = run_facility_case();
    out.push_str(&format!(
        "facility ({racks} racks x {npr} servers, global rationing): {tasks} tasks \
         drained in {wall:.0} ms wall ({tps:.1} tasks/s over {epochs} epochs, \
         {aborts} electrical aborts)\n",
        racks = facility.racks,
        npr = facility.nodes_per_rack,
        tasks = facility.tasks,
        wall = facility.wall_ms,
        tps = facility.tasks_per_s,
        epochs = facility.epochs,
        aborts = facility.supply_aborts,
    ));
    // The event-core point: the tentpole's speedup claim, measured
    // against the lockstep golden oracle on every sweep (the digest
    // equality assert inside is what keeps the claim honest).
    let event_core = run_event_core_case();
    out.push_str(&format!(
        "event core ({nodes} servers, sparse arrivals): lockstep {lock:.0} ms vs \
         event {ev:.0} ms over {windows} windows — {speedup:.1}x, digests identical\n",
        nodes = event_core.nodes,
        lock = event_core.lockstep_ms,
        ev = event_core.event_ms,
        windows = event_core.windows,
        speedup = event_core.speedup,
    ));
    // The heterogeneous point: the duplication-economics claim on the
    // degraded big/little rack — competitive duplicates with loser
    // cancellation must beat bounded retry-in-place at the p99 (the
    // figure's fixture, so retuning `figs_hetero` retunes this point).
    let hetero = run_hetero_rack_case();
    out.push_str(&format!(
        "hetero rack ({nodes} servers, big/little, crash plan): retry p99 \
         {retry:.2} ms vs dup+cancel {dup:.2} ms — {gain:.1}x at +{extra:.0}% feed \
         draw ({cancelled} losers cancelled)\n",
        nodes = hetero.nodes,
        retry = hetero.retry_p99_ms,
        dup = hetero.dup_p99_ms,
        gain = hetero.p99_gain,
        extra = hetero.extra_draw_frac * 100.0,
        cancelled = hetero.cancelled_copies,
    ));
    let path = bench_json_path(quick);
    match std::fs::write(
        &path,
        bench_json(
            &cases,
            Some(&rack),
            Some(&threaded),
            Some(&rack_power),
            Some(&facility),
            Some(&event_core),
            Some(&hetero),
        ),
    ) {
        Ok(()) => out.push_str(&format!("wrote {}\n", path.display())),
        Err(e) => out.push_str(&format!("could not write {}: {e}\n", path.display())),
    }
    out.push_str(&format!("wrote {}\n", csv.finish().display()));
    PerfRun {
        cases,
        threaded,
        rack_power,
        facility,
        event_core,
        hetero,
        report: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole claim in miniature: on a small grid the ADI run
    /// must agree with explicit to the matched-accuracy bar. (The
    /// 32x32 10x-speedup claim itself is pinned by `perfbench --check`
    /// in the perf-smoke CI job — wall-clock assertions don't belong
    /// in `cargo test`.)
    #[test]
    fn adi_matches_explicit_on_the_perf_cycle() {
        let case = run_case(8);
        assert!(
            case.max_dev_k < 0.1,
            "8x8 dev {:.4} K exceeds the matched-accuracy bar",
            case.max_dev_k
        );
        assert!(case.explicit_ms > 0.0 && case.adi_ms > 0.0);
    }

    #[test]
    fn bench_json_is_wellformed_enough() {
        let cases = vec![run_case(8)];
        let json = bench_json(&cases, None, None, None, None, None, None);
        assert!(json.contains("\"grid\": \"8x8x3\""));
        assert!(json.contains("\"threads\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn rack_case_lands_in_the_json() {
        let cases = vec![run_case(8)];
        let rack = run_rack_case(false);
        assert_eq!(rack.nodes, 16);
        assert_eq!(rack.n, 32);
        assert!(rack.adi_ms > 0.0);
        assert!(rack.explicit_ms.is_none(), "explicit is a --full extra");
        let json = bench_json(&cases, Some(&rack), None, None, None, None, None);
        assert!(json.contains("\"rack_case\""));
        assert!(json.contains("\"grid\": \"32x32x2\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn threaded_rack_case_lands_in_the_json() {
        // A synthetic point keeps this a serialization test; the live
        // measurement (with its internal digest-equality assertion)
        // runs in `perfbench`/CI.
        let threaded = ThreadedRackPerfCase {
            nodes: 64,
            n: 64,
            cells: 8192,
            cpus: 8,
            serial_ms: 120.0,
            threads2_ms: 65.0,
            threads8_ms: 22.5,
            speedup: 120.0 / 22.5,
            digest: 0x0012_3456_789a_bcde,
        };
        let cases = vec![run_case(8)];
        let json = bench_json(&cases, None, Some(&threaded), None, None, None, None);
        assert!(json.contains("\"threaded_rack_case\""));
        assert!(json.contains("\"grid\": \"64x64x2\""));
        assert!(json.contains("\"cpus\": 8"));
        assert!(json.contains("\"threads8_ms\": 22.500"));
        assert!(json.contains("\"digest\": \"00123456789abcde\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    /// The live threaded point's determinism contract: the measurement
    /// itself asserts digest equality across 1/2/8 lanes, so just
    /// running it is the test. Kept at the bench layer (in addition to
    /// the thermal crate's bit-identity tests) because this drives the
    /// exact rack cycle the published number comes from.
    #[test]
    fn threaded_rack_measurement_is_deterministic_across_lane_counts() {
        let a = run_threaded_rack_case();
        let b = run_threaded_rack_case();
        assert_eq!(a.digest, b.digest, "rack cycle digest must be stable");
        assert!(a.serial_ms > 0.0 && a.threads2_ms > 0.0 && a.threads8_ms > 0.0);
    }

    #[test]
    fn rack_power_and_facility_cases_land_in_the_json() {
        // Synthetic points keep this a serialization test (the live
        // measurements run in `perfbench`/CI, not `cargo test`).
        let power = RackPowerPerfCase {
            stack: "rack 16 servers, shared 120 W feed, power-aware admission".to_string(),
            nodes: 16,
            tasks: 12,
            windows: 4321,
            wall_ms: 1234.5,
            us_per_window: 285.7,
            tasks_per_s: 9.7,
            supply_aborts: 0,
            fault_events: 0,
            failed_tasks: 0,
        };
        let facility = FacilityPerfCase {
            stack: "facility 4 racks x 16 servers, globally rationed 160 W feed, \
                    row CRAC coupling"
                .to_string(),
            racks: 4,
            nodes_per_rack: 16,
            tasks: 120,
            epochs: 700,
            wall_ms: 2500.0,
            tasks_per_s: 48.0,
            supply_aborts: 0,
            fault_events: 0,
            failed_tasks: 0,
        };
        let event_core = EventCorePerfCase {
            stack: "rack 4096 servers, sparse arrivals, event core vs lockstep oracle".to_string(),
            nodes: 4096,
            tasks: 2,
            windows: 8730,
            lockstep_ms: 3100.0,
            event_ms: 260.0,
            speedup: 11.9,
            digest: 0x00ab_cdef_0123_4567,
        };
        let hetero = HeteroRackPerfCase {
            stack: "degraded hetero rack, 2 big + 2 little servers, duplication + cancel \
                    vs retry-in-place"
                .to_string(),
            nodes: 4,
            tasks: 16,
            retry_p99_ms: 2.522,
            dup_p99_ms: 1.310,
            p99_gain: 2.522 / 1.310,
            retry_energy_j: 0.0412,
            dup_energy_j: 0.0595,
            extra_draw_frac: 0.445,
            cancelled_copies: 15,
            requeues: 2,
            wall_ms: 1300.0,
        };
        let cases = vec![run_case(8)];
        let rack = run_rack_case(false);
        let json = bench_json(
            &cases,
            Some(&rack),
            None,
            Some(&power),
            Some(&facility),
            Some(&event_core),
            Some(&hetero),
        );
        assert!(json.contains("\"rack_power_case\""));
        assert!(json.contains("\"facility_case\""));
        assert!(json.contains("\"event_core_case\""));
        assert!(json.contains("\"hetero_rack_case\""));
        assert!(json.contains("\"tasks_per_s\": 9.70"));
        assert!(json.contains("\"tasks_per_s\": 48.00"));
        assert!(json.contains("\"speedup\": 11.90"));
        assert!(json.contains("\"retry_p99_ms\": 2.522"));
        assert!(json.contains("\"p99_gain\": 1.93"));
        assert!(json.contains("\"cancelled_copies\": 15"));
        // The digest serializes as fixed-width hex, leading zeros kept
        // (a truncated digest could alias two different reports).
        assert!(json.contains("\"digest\": \"00abcdef01234567\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Every section also serializes independently.
        let threaded = ThreadedRackPerfCase {
            nodes: 64,
            n: 64,
            cells: 8192,
            cpus: 1,
            serial_ms: 100.0,
            threads2_ms: 110.0,
            threads8_ms: 130.0,
            speedup: 100.0 / 110.0,
            digest: 1,
        };
        for (r, t, p, f, e, h) in [
            (None, None, Some(&power), None, None, None),
            (None, None, None, Some(&facility), None, None),
            (Some(&rack), None, None, Some(&facility), None, None),
            (None, None, None, None, Some(&event_core), None),
            (
                Some(&rack),
                Some(&threaded),
                None,
                None,
                Some(&event_core),
                None,
            ),
            (None, Some(&threaded), None, None, None, None),
            (None, None, None, None, None, Some(&hetero)),
            (None, None, Some(&power), None, None, Some(&hetero)),
            (
                None,
                Some(&threaded),
                Some(&power),
                Some(&facility),
                Some(&event_core),
                Some(&hetero),
            ),
        ] {
            let alone = bench_json(&cases, r, t, p, f, e, h);
            assert_eq!(alone.matches('{').count(), alone.matches('}').count());
            assert_eq!(alone.matches('[').count(), alone.matches(']').count());
        }
    }
}
