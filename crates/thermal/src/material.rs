//! Material property database for thermal design studies.
//!
//! Properties are those the paper's Section 4 relies on: volumetric heat
//! capacity for solid heat storage (copper, aluminum), and melting point plus
//! latent heat of fusion for phase-change materials (icosane and the generic
//! engineered PCM assumed in the paper's design: latent heat 100 J/g at a
//! density of 1 g/cm^3 with a 60 C melting point).

use serde::{Deserialize, Serialize};

/// Thermophysical properties of a packaging/heat-storage material.
///
/// All properties are in SI-derived units commonly used in package-level
/// thermal design: J/(g*K) for specific heat, g/cm^3 for density, J/g for
/// latent heat, W/(m*K) for bulk conductivity and degrees Celsius for the
/// melting point.
///
/// # Examples
///
/// ```
/// use sprint_thermal::material::Material;
///
/// let cu = Material::copper();
/// // Copper's volumetric heat capacity is ~3.45 J/(cm^3 K) (paper Section 4.1).
/// assert!((cu.volumetric_heat_capacity_j_per_cm3_k() - 3.45).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Material {
    name: String,
    /// Specific heat capacity of the solid phase, J/(g*K).
    specific_heat_j_per_g_k: f64,
    /// Density, g/cm^3.
    density_g_per_cm3: f64,
    /// Latent heat of fusion, J/g. Zero for materials used below their
    /// melting point (or with no useful phase transition).
    latent_heat_j_per_g: f64,
    /// Melting point in degrees Celsius. `None` when irrelevant in the
    /// operating range (e.g. copper in a mobile device).
    melting_point_c: Option<f64>,
    /// Bulk thermal conductivity, W/(m*K).
    thermal_conductivity_w_per_m_k: f64,
}

impl Material {
    /// Creates a material with explicit properties.
    ///
    /// # Panics
    ///
    /// Panics if any magnitude is negative or not finite.
    pub fn new(
        name: impl Into<String>,
        specific_heat_j_per_g_k: f64,
        density_g_per_cm3: f64,
        latent_heat_j_per_g: f64,
        melting_point_c: Option<f64>,
        thermal_conductivity_w_per_m_k: f64,
    ) -> Self {
        for v in [
            specific_heat_j_per_g_k,
            density_g_per_cm3,
            latent_heat_j_per_g,
            thermal_conductivity_w_per_m_k,
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "material property must be finite and non-negative"
            );
        }
        Self {
            name: name.into(),
            specific_heat_j_per_g_k,
            density_g_per_cm3,
            latent_heat_j_per_g,
            melting_point_c,
            thermal_conductivity_w_per_m_k,
        }
    }

    /// Copper: the straightforward solid heat-storage option of Section 4.1.
    pub fn copper() -> Self {
        Self::new("copper", 0.385, 8.96, 0.0, None, 401.0)
    }

    /// Aluminum: lighter solid heat-storage alternative (2.42 J/(cm^3 K)).
    pub fn aluminum() -> Self {
        Self::new("aluminum", 0.897, 2.70, 0.0, None, 237.0)
    }

    /// Icosane ("candle wax"): melting point 36.8 C, latent heat 241 J/g
    /// (paper Section 4.2, citing Alawadhi & Amon).
    pub fn icosane() -> Self {
        Self::new("icosane", 2.21, 0.788, 241.0, Some(36.8), 0.15)
    }

    /// The paper's reference engineered PCM: latent heat 100 J/g, density
    /// 1 g/cm^3, melting point 60 C, assumed mesh-enhanced conductivity.
    ///
    /// The specific heat is set low (0.3 J/(g*K)) to reflect that the paper's
    /// Figure 4 transient attributes almost all of the PCM's storage to
    /// latent rather than sensible heat (the plateau dominates the rise).
    pub fn reference_pcm() -> Self {
        Self::new("reference-pcm", 0.3, 1.0, 100.0, Some(60.0), 5.0)
    }

    /// Name of the material.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Specific heat capacity in J/(g*K).
    pub fn specific_heat_j_per_g_k(&self) -> f64 {
        self.specific_heat_j_per_g_k
    }

    /// Density in g/cm^3.
    pub fn density_g_per_cm3(&self) -> f64 {
        self.density_g_per_cm3
    }

    /// Latent heat of fusion in J/g (zero when no phase change is modelled).
    pub fn latent_heat_j_per_g(&self) -> f64 {
        self.latent_heat_j_per_g
    }

    /// Melting point in Celsius, when modelled.
    pub fn melting_point_c(&self) -> Option<f64> {
        self.melting_point_c
    }

    /// Bulk thermal conductivity in W/(m*K).
    pub fn thermal_conductivity_w_per_m_k(&self) -> f64 {
        self.thermal_conductivity_w_per_m_k
    }

    /// Volumetric heat capacity in J/(cm^3*K) — the figure of merit the paper
    /// quotes for copper (3.45) and aluminum (2.42).
    pub fn volumetric_heat_capacity_j_per_cm3_k(&self) -> f64 {
        self.specific_heat_j_per_g_k * self.density_g_per_cm3
    }

    /// Sensible heat capacity of a block of `mass_g` grams, in J/K.
    pub fn block_heat_capacity_j_per_k(&self, mass_g: f64) -> f64 {
        self.specific_heat_j_per_g_k * mass_g
    }

    /// Latent heat stored by fully melting `mass_g` grams, in joules.
    pub fn block_latent_heat_j(&self, mass_g: f64) -> f64 {
        self.latent_heat_j_per_g * mass_g
    }

    /// Block thickness (mm) needed for a given mass over a die of
    /// `die_area_mm2` square millimetres.
    ///
    /// Reproduces the paper's "2.3 mm thick block of PCM in contact with a
    /// 64 mm^2 die" style calculations.
    pub fn block_thickness_mm(&self, mass_g: f64, die_area_mm2: f64) -> f64 {
        assert!(die_area_mm2 > 0.0, "die area must be positive");
        // volume cm^3 = mass / density; thickness mm = volume / area.
        let volume_cm3 = mass_g / self.density_g_per_cm3;
        let volume_mm3 = volume_cm3 * 1000.0;
        volume_mm3 / die_area_mm2
    }

    /// Mass (g) of this material required to absorb `energy_j` joules within
    /// a `delta_t_k` kelvin temperature rise using sensible heat only.
    ///
    /// This is the Section 4.1 solid-storage sizing rule.
    pub fn mass_for_sensible_storage_g(&self, energy_j: f64, delta_t_k: f64) -> f64 {
        assert!(delta_t_k > 0.0, "temperature rise must be positive");
        energy_j / (self.specific_heat_j_per_g_k * delta_t_k)
    }

    /// Mass (g) required to absorb `energy_j` joules purely in latent heat.
    ///
    /// Returns `None` for materials with no latent heat. This is the Section
    /// 4.2 sizing rule (150 mg of 100 J/g PCM stores ~16 J — wait, 160 mg
    /// exactly; the paper rounds to "about 150 milligrams").
    pub fn mass_for_latent_storage_g(&self, energy_j: f64) -> Option<f64> {
        if self.latent_heat_j_per_g == 0.0 {
            None
        } else {
            Some(energy_j / self.latent_heat_j_per_g)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copper_volumetric_heat_capacity_matches_paper() {
        let cu = Material::copper();
        assert!((cu.volumetric_heat_capacity_j_per_cm3_k() - 3.45).abs() < 0.05);
    }

    #[test]
    fn aluminum_volumetric_heat_capacity_matches_paper() {
        let al = Material::aluminum();
        assert!((al.volumetric_heat_capacity_j_per_cm3_k() - 2.42).abs() < 0.01);
    }

    #[test]
    fn copper_block_sized_for_16_joules_is_about_7mm() {
        // Paper: absorbing 16 J over a 64 mm^2 die with a 10 C rise needs a
        // ~7.2 mm thick copper block.
        let cu = Material::copper();
        let mass = cu.mass_for_sensible_storage_g(16.0, 10.0);
        let thickness = cu.block_thickness_mm(mass, 64.0);
        assert!(
            (thickness - 7.2).abs() < 0.3,
            "expected ~7.2 mm, got {thickness:.2}"
        );
    }

    #[test]
    fn aluminum_block_sized_for_16_joules_is_about_10mm() {
        let al = Material::aluminum();
        let mass = al.mass_for_sensible_storage_g(16.0, 10.0);
        let thickness = al.block_thickness_mm(mass, 64.0);
        assert!(
            (thickness - 10.3).abs() < 0.5,
            "expected ~10.3 mm, got {thickness:.2}"
        );
    }

    #[test]
    fn reference_pcm_mass_for_16_joules_is_about_150mg() {
        let pcm = Material::reference_pcm();
        let mass = pcm.mass_for_latent_storage_g(16.0).unwrap();
        // 16 J / 100 J/g = 0.16 g; the paper rounds to "about 150 mg".
        assert!((mass - 0.16).abs() < 1e-12);
    }

    #[test]
    fn reference_pcm_block_is_millimetre_scale() {
        let pcm = Material::reference_pcm();
        let thickness = pcm.block_thickness_mm(0.15, 64.0);
        assert!(
            (1.0..4.0).contains(&thickness),
            "expected mm-scale block, got {thickness:.2}"
        );
    }

    #[test]
    fn icosane_has_paper_properties() {
        let ic = Material::icosane();
        assert_eq!(ic.melting_point_c(), Some(36.8));
        assert_eq!(ic.latent_heat_j_per_g(), 241.0);
    }

    #[test]
    fn copper_has_no_latent_storage() {
        assert!(Material::copper().mass_for_latent_storage_g(16.0).is_none());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_property_rejected() {
        let _ = Material::new("bad", -1.0, 1.0, 0.0, None, 1.0);
    }
}
