//! `segment` — image feature classification, after SD-VBS's segmentation.
//!
//! Rounds of: (1) parallel per-tile labeling (threshold bands + local
//! connected components), (2) a *serial* merge pass that unifies labels
//! across tile boundaries with a union-find and relabels the equivalence
//! classes (sequential in SD-VBS too), and (3) a parallel relabel sweep.
//! The serial merge is the parallelism limit the paper observes: segment
//! tops out near 6-7x on 16 cores.

use std::sync::Arc;

use sprint_archsim::isa::Op;
use sprint_archsim::machine::Machine;
use sprint_archsim::memmap::{AddressSpace, Region};
use sprint_archsim::program::{Inbox, Kernel, KernelStatus, ThreadId};

use crate::data::{textured_image, GrayImage};
use crate::emit;
use crate::partition::chunk_range;
use crate::suite::{InputSize, Workload};

/// Number of label-refinement rounds.
pub const ROUNDS: usize = 2;
/// Intensity quantization shift: pixels with equal `value >> SHIFT` band
/// together.
pub const BAND_SHIFT: u32 = 6;

/// A disjoint-set (union-find) structure used by the native segmentation.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets containing `a` and `b`.
    pub fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb) as usize] = ra.min(rb);
        }
    }
}

/// Native segmentation: 4-connected components over intensity bands.
/// Returns the label map and the number of distinct segments.
pub fn segment_native(img: &GrayImage) -> (Vec<u32>, usize) {
    let (w, h) = (img.width, img.height);
    let mut labels: Vec<u32> = (0..(w * h) as u32).collect();
    let mut uf = UnionFind::new(w * h);
    let band = |x: usize, y: usize| img.at(x, y) >> BAND_SHIFT;
    for y in 0..h {
        for x in 0..w {
            if x > 0 && band(x, y) == band(x - 1, y) {
                uf.union((y * w + x) as u32, (y * w + x - 1) as u32);
            }
            if y > 0 && band(x, y) == band(x, y - 1) {
                uf.union((y * w + x) as u32, ((y - 1) * w + x) as u32);
            }
        }
    }
    let mut roots = std::collections::HashMap::new();
    for l in labels.iter_mut() {
        let r = uf.find(*l);
        let next = roots.len() as u32;
        *l = *roots.entry(r).or_insert(next);
    }
    (labels, roots.len())
}

struct SegmentData {
    width: usize,
    height: usize,
    input: Region,
    labels: Region,
}

/// The segmentation workload.
pub struct SegmentWorkload {
    data: Arc<SegmentData>,
    segments: usize,
}

impl std::fmt::Debug for SegmentWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentWorkload")
            .field("width", &self.data.width)
            .field("height", &self.data.height)
            .field("segments", &self.segments)
            .finish_non_exhaustive()
    }
}

impl SegmentWorkload {
    /// Builds the workload at a standard input size.
    pub fn new(size: InputSize) -> Self {
        let scale = (size.scale() as f64).sqrt();
        let w = (640.0 * scale) as usize;
        let h = (512.0 * scale) as usize;
        Self::with_dims(w, h, 0x0005_E611)
    }

    /// Builds the workload for explicit dimensions.
    pub fn with_dims(width: usize, height: usize, seed: u64) -> Self {
        let img = textured_image(width, height, seed);
        let (_labels, segments) = segment_native(&img);
        let mut mem = AddressSpace::new();
        let input = mem.alloc_bytes((width * height) as u64);
        let labels = mem.alloc_bytes((width * height * 4) as u64);
        Self {
            data: Arc::new(SegmentData {
                width,
                height,
                input,
                labels,
            }),
            segments,
        }
    }

    /// Number of segments the native pass found.
    pub fn segments(&self) -> usize {
        self.segments
    }
}

impl Workload for SegmentWorkload {
    fn name(&self) -> &'static str {
        "segment"
    }

    fn setup(&self, machine: &mut Machine, threads: usize) {
        for t in 0..threads {
            machine.spawn(Box::new(SegmentKernel::new(self.data.clone(), t, threads)));
        }
    }

    fn work_units(&self) -> u64 {
        (self.data.width * self.data.height * ROUNDS) as u64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Label,
    Merge,
    Relabel,
    RoundEnd,
    Finished,
}

struct SegmentKernel {
    data: Arc<SegmentData>,
    tid: usize,
    rows: std::ops::Range<usize>,
    round: usize,
    phase: Phase,
    cursor: usize,
}

impl SegmentKernel {
    fn new(data: Arc<SegmentData>, tid: usize, threads: usize) -> Self {
        let rows = chunk_range(data.height, threads, tid);
        Self {
            cursor: rows.start,
            rows,
            data,
            tid,
            round: 0,
            phase: Phase::Label,
        }
    }
}

impl Kernel for SegmentKernel {
    fn step(&mut self, _tid: ThreadId, _inbox: &mut Inbox, out: &mut Vec<Op>) -> KernelStatus {
        let d = &self.data;
        let w = d.width as u64;
        match self.phase {
            Phase::Label => {
                // Parallel: threshold + local components over own rows.
                for _ in 0..4 {
                    if self.cursor >= self.rows.end {
                        break;
                    }
                    let y = self.cursor as u64;
                    emit::load_span(out, d.input, y * w, w);
                    emit::load_span(out, d.labels, y * w * 4, w * 4);
                    emit::store_span(out, d.labels, y * w * 4, w * 4);
                    emit::element_mix(out, w, 0, 6, 2);
                    self.cursor += 1;
                }
                if self.cursor >= self.rows.end {
                    out.push(Op::Barrier);
                    self.phase = Phase::Merge;
                    self.cursor = 0;
                }
                KernelStatus::Running
            }
            Phase::Merge => {
                if self.tid != 0 {
                    out.push(Op::Barrier);
                    self.phase = Phase::Relabel;
                    self.cursor = self.rows.start;
                    return KernelStatus::Running;
                }
                // Serial: union-find across tile-boundary rows plus the
                // region-adjacency bookkeeping — touches every fourth row
                // of the label map (boundary rows and the equivalence
                // table), the sequential section SD-VBS also has.
                for _ in 0..4 {
                    if self.cursor >= d.height {
                        break;
                    }
                    let y = self.cursor as u64;
                    emit::load_span(out, d.labels, y * w * 4, w * 4);
                    emit::element_mix(out, w, 0, 2, 1);
                    self.cursor += 4;
                }
                if self.cursor >= d.height {
                    out.push(Op::Barrier);
                    self.phase = Phase::Relabel;
                    self.cursor = self.rows.start;
                }
                KernelStatus::Running
            }
            Phase::Relabel => {
                // Parallel: rewrite labels through the equivalence map.
                for _ in 0..4 {
                    if self.cursor >= self.rows.end {
                        break;
                    }
                    let y = self.cursor as u64;
                    emit::load_span(out, d.labels, y * w * 4, w * 4);
                    emit::store_span(out, d.labels, y * w * 4, w * 4);
                    emit::element_mix(out, w, 0, 3, 1);
                    self.cursor += 1;
                }
                if self.cursor >= self.rows.end {
                    out.push(Op::Barrier);
                    self.phase = Phase::RoundEnd;
                }
                KernelStatus::Running
            }
            Phase::RoundEnd => {
                self.round += 1;
                if self.round >= ROUNDS {
                    self.phase = Phase::Finished;
                    return KernelStatus::Done;
                }
                self.phase = Phase::Label;
                self.cursor = self.rows.start;
                KernelStatus::Running
            }
            Phase::Finished => KernelStatus::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_archsim::config::MachineConfig;

    #[test]
    fn union_find_merges_transitively() {
        let mut uf = UnionFind::new(10);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(5, 6);
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(5));
    }

    #[test]
    fn uniform_image_is_one_segment() {
        let img = GrayImage {
            width: 32,
            height: 32,
            pixels: vec![100; 32 * 32],
        };
        let (_labels, n) = segment_native(&img);
        assert_eq!(n, 1);
    }

    #[test]
    fn two_halves_are_two_segments() {
        let mut img = GrayImage {
            width: 32,
            height: 32,
            pixels: vec![10; 32 * 32],
        };
        for y in 16..32 {
            for x in 0..32 {
                img.pixels[y * 32 + x] = 200;
            }
        }
        let (labels, n) = segment_native(&img);
        assert_eq!(n, 2);
        assert_ne!(labels[0], labels[20 * 32]);
    }

    #[test]
    fn textured_image_has_many_segments() {
        let w = SegmentWorkload::with_dims(128, 96, 3);
        assert!(
            w.segments() > 10,
            "textured scene: {} segments",
            w.segments()
        );
    }

    #[test]
    fn speedup_is_parallelism_limited() {
        let elapsed = |threads: usize| -> u64 {
            let w = SegmentWorkload::with_dims(256, 192, 3);
            let mut m = Machine::new(MachineConfig::hpca().with_cores(threads));
            w.setup(&mut m, threads);
            while !m.all_done() {
                m.run_window(1_000_000);
            }
            m.time_ps()
        };
        let t1 = elapsed(1);
        let t16 = elapsed(16);
        let speedup = t1 as f64 / t16 as f64;
        assert!(
            (3.5..10.0).contains(&speedup),
            "segment should cap near the paper's ~6.6x: {speedup:.2}"
        );
    }
}
