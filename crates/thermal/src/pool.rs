//! A small persistent worker pool for the parallel ADI sweeps.
//!
//! Each `adi_step` sweep is hundreds of *independent* tridiagonal lines
//! (rows per layer, columns per layer, vertical cell stacks), so the
//! grid solver fans fixed contiguous line ranges out across workers.
//! The determinism rules mirror the facility settlement barrier: the
//! line→worker assignment is a pure function of `(line count, lane,
//! lane count)`, every concurrent write lands in a worker-owned
//! disjoint range, and the one cross-line reduction
//! (`boundary_absorbed_j`) is re-accumulated serially by the caller in
//! ascending cell order — so results are bit-identical at 1, 2 or 8
//! threads (pinned by `tests/grid_threads.rs`).
//!
//! Why not `std::thread::scope` per advance: a scope spawns and joins
//! its workers on every call, which at rack scale means hundreds of
//! spawn/join round-trips per sampling window — more than the sweeps
//! themselves cost. The pool keeps the workers parked on a condvar
//! between regions instead, and preserves the property scoped threads
//! give for free (the job borrow never outlives the call) by refusing
//! to return from [`SolverPool::run`] until every worker has finished
//! the region.
//!
//! No external dependencies: `std` mutex/condvar dispatch only.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A lifetime-erased pointer to the region closure. Sound because
/// [`SolverPool::run`] blocks until every worker has dropped its use of
/// the pointee (the completion wait is unconditional, panic or not).
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// The pointee is `Sync` (required by `run`'s signature) and the pointer
// is only dereferenced while `run` keeps the borrow alive.
unsafe impl Send for JobPtr {}

/// Dispatch state shared between the caller and the parked workers.
struct Slot {
    /// Monotone region counter; a worker runs one job per increment.
    epoch: u64,
    /// The current region's closure (set while `remaining > 0`).
    job: Option<JobPtr>,
    /// Workers still inside the current region.
    remaining: usize,
    /// First worker panic message of the region, re-raised by `run`.
    panicked: Option<String>,
    /// Tear-down flag (set by `Drop`).
    shutdown: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    /// Wakes workers for a new epoch (or shutdown).
    work: Condvar,
    /// Wakes the caller when `remaining` hits zero.
    done: Condvar,
}

/// A persistent pool of `lanes - 1` parked worker threads plus the
/// calling thread (lane 0). See the [module docs](self) for the
/// determinism contract.
pub struct SolverPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    lanes: usize,
}

impl std::fmt::Debug for SolverPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverPool")
            .field("lanes", &self.lanes)
            .finish_non_exhaustive()
    }
}

impl SolverPool {
    /// Spawns a pool with `lanes` total execution lanes: the caller is
    /// lane 0, and `lanes - 1` worker threads are parked for the rest.
    /// `lanes` is clamped to at least 1 (a one-lane pool runs every
    /// region inline with zero synchronization).
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                epoch: 0,
                job: None,
                remaining: 0,
                panicked: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..lanes)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("adi-sweep-{lane}"))
                    .spawn(move || worker_loop(shared, lane))
                    .expect("failed to spawn ADI sweep worker")
            })
            .collect();
        Self {
            shared,
            workers,
            lanes,
        }
    }

    /// Total execution lanes (workers + the calling thread).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Runs one region: `job(lane)` executes once per lane (`0 ..
    /// lanes()`), lane 0 on the calling thread, and the call returns
    /// only after *every* lane has finished. The job must confine each
    /// lane's writes to lane-disjoint data; the pool guarantees nothing
    /// about inter-lane ordering within a region.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from any lane (after all lanes have settled,
    /// so no borrow escapes).
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        if self.workers.is_empty() {
            job(0);
            return;
        }
        // Erase the borrow's lifetime: the raw trait-object pointer
        // defaults to `'static`, which the completion wait below makes
        // honest (the pointee outlives every dereference).
        let erased = JobPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(job as *const _)
        });
        {
            let mut slot = self.shared.slot.lock().unwrap();
            slot.job = Some(erased);
            slot.remaining = self.workers.len();
            slot.epoch += 1;
            self.shared.work.notify_all();
        }
        // Lane 0 runs here; a panic is held until the workers settle so
        // the erased borrow cannot outlive the region.
        let main_result = catch_unwind(AssertUnwindSafe(|| job(0)));
        let worker_panic = {
            let mut slot = self.shared.slot.lock().unwrap();
            while slot.remaining > 0 {
                slot = self.shared.done.wait(slot).unwrap();
            }
            slot.job = None;
            slot.panicked.take()
        };
        if let Err(payload) = main_result {
            resume_unwind(payload);
        }
        if let Some(msg) = worker_panic {
            panic!("ADI sweep worker panicked: {msg}");
        }
    }
}

impl Drop for SolverPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().unwrap();
            slot.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, lane: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().unwrap();
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen {
                    seen = slot.epoch;
                    break slot.job.expect("epoch advanced without a job");
                }
                slot = shared.work.wait(slot).unwrap();
            }
        };
        // The pointee outlives this call: `run` blocks on `remaining`
        // before releasing the borrow.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(lane) }));
        let mut slot = shared.slot.lock().unwrap();
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            slot.panicked.get_or_insert(msg);
        }
        slot.remaining -= 1;
        if slot.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

/// The fixed work split behind every threaded sweep: lane `lane` of
/// `lanes` owns the contiguous index range returned for a `len`-item
/// region. Pure function of its arguments — the same item always lands
/// on the same lane for a given lane count, and *which* lane an item
/// lands on cannot affect results anyway (disjoint writes, caller-side
/// reductions), which is what keeps traces byte-identical across lane
/// counts.
pub fn lane_range(len: usize, lane: usize, lanes: usize) -> std::ops::Range<usize> {
    let per = len / lanes;
    let rem = len % lanes;
    let lo = lane * per + lane.min(rem);
    let hi = lo + per + usize::from(lane < rem);
    lo..hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn lane_ranges_partition_exactly() {
        for len in [0usize, 1, 7, 64, 1000] {
            for lanes in [1usize, 2, 3, 8] {
                let mut covered = 0;
                let mut next = 0;
                for lane in 0..lanes {
                    let r = lane_range(len, lane, lanes);
                    assert_eq!(r.start, next, "len={len} lanes={lanes} lane={lane}");
                    covered += r.len();
                    next = r.end;
                }
                assert_eq!(covered, len);
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn every_lane_runs_exactly_once_per_region() {
        let pool = SolverPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..100 {
            pool.run(&|lane| {
                hits[lane].fetch_add(1, Ordering::Relaxed);
            });
        }
        for (lane, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 100, "lane {lane}");
        }
    }

    #[test]
    fn single_lane_pool_runs_inline() {
        let pool = SolverPool::new(1);
        assert_eq!(pool.lanes(), 1);
        let hit = AtomicUsize::new(0);
        pool.run(&|lane| {
            assert_eq!(lane, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_panic_is_reraised_after_the_region_settles() {
        let pool = SolverPool::new(3);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|lane| {
                if lane == 2 {
                    panic!("lane 2 exploded");
                }
            });
        }));
        assert!(result.is_err(), "the worker panic must propagate");
        // The pool must still be serviceable afterwards.
        let count = AtomicUsize::new(0);
        pool.run(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }
}
