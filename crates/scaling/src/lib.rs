//! Dark-silicon technology scaling models (Figure 1 / Section 2).
//!
//! Projections of power density and the dark-silicon fraction for a
//! fixed-area chip across process nodes 45 nm → 6 nm, under ITRS and
//! Borkar scaling assumptions — the trend data motivating computational
//! sprinting.
//!
//! # Quick start
//!
//! ```
//! use sprint_scaling::model::ScalingModel;
//!
//! for (nm, density, dark) in ScalingModel::ItrsWithBorkarVdd.series() {
//!     println!("{nm:>2} nm: {density:.2}x power density, {dark:.0}% dark");
//! }
//! ```

#![warn(missing_docs)]

pub mod model;
pub mod node;

pub use model::ScalingModel;
pub use node::{TechNode, NODES};
