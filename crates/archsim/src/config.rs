//! Machine configuration: the paper's Section 8.1 parameters.

use serde::{Deserialize, Serialize};

use crate::energy::EnergyModel;

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Access (hit) latency in core cycles.
    pub hit_latency_cycles: u64,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.ways * self.line_bytes)
    }

    /// The paper's private L1: 32 KB, 8-way (hit latency folded into the
    /// CPI-1 pipeline, so 0 extra cycles).
    pub fn hpca_l1() -> Self {
        Self {
            capacity_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
            hit_latency_cycles: 0,
        }
    }

    /// The paper's shared last-level cache: 4 MB, 16-way, 20-cycle hits.
    pub fn hpca_llc() -> Self {
        Self {
            capacity_bytes: 4 * 1024 * 1024,
            ways: 16,
            line_bytes: 64,
            hit_latency_cycles: 20,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when the geometry is degenerate (non-power-of-two line size,
    /// zero ways, or capacity not divisible into sets).
    pub fn validate(&self) {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.ways > 0, "cache needs at least one way");
        assert!(
            self.capacity_bytes
                .is_multiple_of(self.ways * self.line_bytes),
            "capacity must divide into sets"
        );
        assert!(
            self.sets().is_power_of_two(),
            "set count must be a power of two"
        );
    }
}

/// Memory system parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Number of independent channels (lines interleave across channels).
    pub channels: usize,
    /// Per-channel bandwidth in bytes per nanosecond (4.0 = 4 GB/s).
    pub bytes_per_ns: f64,
    /// Uncontended round-trip latency in nanoseconds.
    pub latency_ns: f64,
}

impl MemoryConfig {
    /// The paper's dual-channel interface: 4 GB/s per channel, 60 ns
    /// uncontended round trip.
    pub fn hpca() -> Self {
        Self {
            channels: 2,
            bytes_per_ns: 4.0,
            latency_ns: 60.0,
        }
    }

    /// Doubles per-channel bandwidth (the Section 8.5 what-if that lifts
    /// feature/disparity to 12x on 64 cores).
    pub fn with_doubled_bandwidth(mut self) -> Self {
        self.bytes_per_ns *= 2.0;
        self
    }

    /// Time to transfer one cache line on a channel, picoseconds.
    pub fn line_transfer_ps(&self, line_bytes: usize) -> u64 {
        ((line_bytes as f64 / self.bytes_per_ns) * 1000.0) as u64
    }
}

/// Full machine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of physical cores on the die (including dark ones).
    pub cores: usize,
    /// Nominal clock frequency, GHz.
    pub freq_ghz: f64,
    /// Private L1 data cache.
    pub l1: CacheConfig,
    /// Shared last-level cache (directory co-located).
    pub llc: CacheConfig,
    /// Memory interface.
    pub memory: MemoryConfig,
    /// Per-instruction-class energy table.
    pub energy: EnergyModel,
    /// PAUSE nap length in cycles (1000 in the paper).
    pub pause_cycles: u64,
    /// Dynamic power of a sleeping core relative to active (0.10).
    pub sleep_power_fraction: f64,
    /// Scheduler timeslice when multiplexing threads on a core, cycles.
    pub timeslice_cycles: u64,
    /// One-time cost of migrating a thread between cores, cycles.
    pub migration_cost_cycles: u64,
    /// When true, memory latency and bandwidth scale with the frequency
    /// multiplier — the *idealized* DVFS assumption of the paper's Section
    /// 8.4 (a linear voltage increase buys a linear whole-system speedup).
    pub idealized_dvfs_memory: bool,
    /// Dynamic power of a memory-stalled core relative to active (partial
    /// clock gating while the pipeline waits on a miss).
    pub stall_power_fraction: f64,
}

impl MachineConfig {
    /// The paper's 16-core smart-phone chip at 1 GHz.
    pub fn hpca() -> Self {
        Self {
            cores: 16,
            freq_ghz: 1.0,
            l1: CacheConfig::hpca_l1(),
            llc: CacheConfig::hpca_llc(),
            memory: MemoryConfig::hpca(),
            energy: EnergyModel::mcpat_22nm_lop(),
            pause_cycles: 1000,
            sleep_power_fraction: 0.10,
            timeslice_cycles: 50_000,
            migration_cost_cycles: 2_000,
            idealized_dvfs_memory: false,
            stall_power_fraction: 0.4,
        }
    }

    /// Same configuration with a different core count (Section 8.5 sweeps
    /// 1 to 64 cores).
    pub fn with_cores(mut self, cores: usize) -> Self {
        assert!(cores > 0, "at least one core required");
        self.cores = cores;
        self
    }

    /// Duration of one core cycle at nominal frequency, picoseconds.
    pub fn cycle_ps(&self) -> u64 {
        (1000.0 / self.freq_ghz).round() as u64
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on degenerate cache geometry or non-positive frequency.
    pub fn validate(&self) {
        assert!(self.cores > 0, "at least one core required");
        assert!(self.freq_ghz > 0.0, "frequency must be positive");
        assert!(self.memory.channels > 0, "at least one memory channel");
        assert!(
            (0.0..=1.0).contains(&self.sleep_power_fraction),
            "sleep power fraction must be in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.stall_power_fraction),
            "stall power fraction must be in [0,1]"
        );
        self.l1.validate();
        self.llc.validate();
        assert_eq!(
            self.l1.line_bytes, self.llc.line_bytes,
            "uniform line size assumed"
        );
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::hpca()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpca_l1_geometry() {
        let l1 = CacheConfig::hpca_l1();
        l1.validate();
        assert_eq!(l1.sets(), 64);
    }

    #[test]
    fn hpca_llc_geometry() {
        let llc = CacheConfig::hpca_llc();
        llc.validate();
        assert_eq!(llc.sets(), 4096);
    }

    #[test]
    fn line_transfer_time_matches_bandwidth() {
        let mem = MemoryConfig::hpca();
        // 64 B at 4 GB/s = 16 ns = 16000 ps.
        assert_eq!(mem.line_transfer_ps(64), 16_000);
        let doubled = mem.with_doubled_bandwidth();
        assert_eq!(doubled.line_transfer_ps(64), 8_000);
    }

    #[test]
    fn cycle_time_at_nominal_frequency() {
        assert_eq!(MachineConfig::hpca().cycle_ps(), 1000);
    }

    #[test]
    fn config_validates() {
        MachineConfig::hpca().validate();
        MachineConfig::hpca().with_cores(64).validate();
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = MachineConfig::hpca().with_cores(0);
    }
}
