//! Rack-level sprinting: unmanaged vs. admission-controlled.
//!
//! A 4x4-server rack (one shared 32x32 ADI thermal grid, servers over a
//! common airflow plenum) works through a batch of vision-kernel bursts
//! under three cluster policies, per Porto et al.'s "fast, but not so
//! furious" observation: sprinting *every* server into shared thermal
//! headroom collapses the rack, while rationing sprints — sprint, or
//! briefly wait for headroom — completes the same queue sooner at a
//! lower peak temperature.
//!
//! ```text
//! cargo run --release --example rack_sprint
//! ```

use computational_sprinting::prelude::*;
use sprint_thermal::grid::GridThermalParams;

/// Thermal time compression (so the example runs in seconds).
const COMPRESS: f64 = 6000.0;
/// Tasks in the batch: six waves over the 16 servers. The queue must
/// outlast the rack's cold thermal reserve for the policies to
/// separate — the first wave is nearly free under any policy, and the
/// collapse of the unmanaged rack compounds over the later waves.
const TASKS: usize = 96;

fn run(label: &str, policy: ClusterPolicy) -> (ClusterReport, usize) {
    let mut cfg = SprintConfig::hpca_parallel();
    // Each node's governor credits itself the rack's nameplate per-node
    // cooling share (~8 W for this rack); the credit is only honored
    // while few nodes sprint — node governors cannot see that.
    cfg.tdp_w = 8.0;
    let mut cluster = ClusterBuilder::new(GridThermalParams::rack(4, 4).time_scaled(COMPRESS))
        .policy(policy)
        .config(cfg)
        .tasks(ClusterTask::batch(
            WorkloadKind::Sobel,
            InputSize::A,
            16,
            TASKS,
        ))
        .trace_capacity(0)
        .build();
    // A truncated run would skew the comparison (only completed tasks
    // enter the makespan), so insist the queue actually drains.
    assert_eq!(cluster.run_to_completion(), ClusterOutcome::Drained);
    let report = cluster.report();
    let failsafes = report
        .node_reports
        .iter()
        .flat_map(|n| n.events.iter())
        .filter(|e| matches!(e, ControllerEvent::FailsafeThrottled { .. }))
        .count();
    println!(
        "{label:11} makespan {:6.2} ms | mean latency {:6.2} ms | peak {:4.1} C | \
         sprints {:2} | sheds {:2} | failsafes {:2}",
        report.makespan_s * 1e3,
        report.mean_latency_s * 1e3,
        report.peak_junction_c,
        report.admitted_sprints,
        report.sheds,
        failsafes,
    );
    (report, failsafes)
}

fn main() {
    println!("== {TASKS} sobel bursts on a 4x4 server rack (32x32 ADI grid, shared plenum) ==\n");
    let (no_sprint, _) = run("no-sprint", ClusterPolicy::NoSprint);
    let (all_sprint, collapse_failsafes) = run("all-sprint", ClusterPolicy::AllSprint);
    let (admission, admission_failsafes) = run("admission", ClusterPolicy::greedy_default());

    println!();
    println!(
        "unmanaged all-sprint reaches {:.1} C (limit 70 C): every node's governor was\n\
         calibrated at nameplate inlet conditions, so none of them can see the shared\n\
         plenum saturating — {collapse_failsafes} hardware failsafes fire and later \
         sprints die young.",
        all_sprint.peak_junction_c
    );
    println!(
        "admission control finishes the queue {:.1}x sooner than never sprinting and\n\
         {:.1}x sooner than sprinting everywhere, with {} failsafe engagement(s):\n\
         tasks briefly *wait* for headroom instead of degrading, and the hottest nodes\n\
         are shed first when the shared pool runs low.",
        no_sprint.makespan_s / admission.makespan_s,
        all_sprint.makespan_s / admission.makespan_s,
        admission_failsafes,
    );
}
