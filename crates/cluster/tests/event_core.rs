//! Golden-equivalence tests for the event-driven cluster core: for
//! every configuration the lockstep stepper is the oracle, and the
//! event-driven run must reproduce its [`ClusterReport`] FNV digest
//! byte-for-byte — same outcomes, same latencies at exact `f64` bits,
//! same scheduler event counts, same per-node coupled reports. Seeded
//! event-order fuzzing additionally shows the run is independent of
//! heap insertion order (deterministic tie-breaking), covering the
//! shed-order determinism story.

use sprint_cluster::prelude::*;
use sprint_core::config::SprintConfig;
use sprint_thermal::grid::GridThermalParams;
use sprint_workloads::suite::{InputSize, WorkloadKind};

/// The open-arrival power-rationed rack — the `rack_power_case` shape
/// at test scale: shared feed, joint thermal+power admission, staggered
/// arrivals that leave idle stretches between bursts.
fn rationed_rack() -> ClusterSession {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 8.0;
    ClusterBuilder::new(GridThermalParams::rack(3, 3).time_scaled(6000.0))
        .policy(ClusterPolicy::greedy_default())
        .power_policy(PowerPolicy::rationed_default())
        .rack_supply(RackSupplyParams::rack(9).time_scaled(6000.0))
        .config(cfg)
        .tasks(ClusterTask::arrivals(
            WorkloadKind::Sobel,
            InputSize::A,
            16,
            12,
            0.0,
            60e-6,
        ))
        .trace_capacity(0)
        .build()
}

/// A shed-heavy thermal-only rack: round-robin rotation with a tight
/// allowance, so the shed order (and its grant-rotation bookkeeping)
/// is exercised hard.
fn round_robin_rack() -> ClusterSession {
    ClusterBuilder::new(GridThermalParams::rack(2, 2).time_scaled(3000.0))
        .policy(ClusterPolicy::RoundRobin { max_sprinting: 2 })
        .tasks(ClusterTask::batch(WorkloadKind::Sobel, InputSize::A, 8, 10))
        .trace_capacity(0)
        .build()
}

/// Competitive duplication: copies race, losers are discarded — the
/// completion bookkeeping (first-finisher-wins) must survive the
/// event-driven retirement path.
fn duplicating_rack() -> ClusterSession {
    ClusterBuilder::new(GridThermalParams::rack(2, 2).time_scaled(3000.0))
        .policy(ClusterPolicy::CompetitiveDuplicate {
            admit_headroom_k: 10.0,
            copies: 2,
        })
        .tasks(ClusterTask::arrivals(
            WorkloadKind::Sobel,
            InputSize::A,
            8,
            6,
            0.0,
            150e-6,
        ))
        .trace_capacity(0)
        .build()
}

/// A rack that trips its time limit with tasks outstanding, so the
/// terminal catch-up path is pinned on the `TimeLimit` outcome too.
fn time_limited_rack() -> ClusterSession {
    ClusterBuilder::new(GridThermalParams::rack(2, 1).time_scaled(3000.0))
        .policy(ClusterPolicy::NoSprint)
        .tasks(ClusterTask::batch(WorkloadKind::Sobel, InputSize::B, 8, 12))
        .max_time_s(0.002)
        .trace_capacity(0)
        .build()
}

/// Runs `build()` both ways and asserts byte-identical reports (via
/// the FNV digest) and identical terminal outcomes and window counts.
fn assert_equivalent(build: fn() -> ClusterSession, label: &str) {
    let mut lockstep = build();
    let lockstep_outcome = lockstep.run_to_completion();
    let lockstep_report = lockstep.report();

    let mut event = EventDrivenCluster::new(build());
    let event_outcome = event.run_to_completion();
    let event_report = event.report();

    assert_eq!(lockstep_outcome, event_outcome, "{label}: outcome");
    assert_eq!(lockstep.windows(), event.windows(), "{label}: window count");
    assert_eq!(
        lockstep_report.digest(),
        event_report.digest(),
        "{label}: the event-driven run must reproduce the lockstep \
         report digest byte-for-byte \
         (lockstep completed {} / event {}, lockstep sheds {}+{} / \
         event {}+{})",
        lockstep_report.completed,
        event_report.completed,
        lockstep_report.sheds,
        lockstep_report.power_sheds,
        event_report.sheds,
        event_report.power_sheds,
    );
}

#[test]
fn event_core_matches_lockstep_on_the_rationed_rack() {
    assert_equivalent(rationed_rack, "rationed open arrivals");
}

#[test]
fn event_core_matches_lockstep_on_round_robin_shedding() {
    assert_equivalent(round_robin_rack, "round-robin shed rotation");
}

#[test]
fn event_core_matches_lockstep_on_competitive_duplication() {
    assert_equivalent(duplicating_rack, "competitive duplication");
}

#[test]
fn event_core_matches_lockstep_at_the_time_limit() {
    assert_equivalent(time_limited_rack, "time-limited drain");
}

/// Mid-run parity: a report taken *before* the queue drains must also
/// match the oracle at the same window count — the lazy rest ledgers
/// settle at any observation point, not just at terminal.
#[test]
fn event_core_matches_lockstep_mid_run() {
    let mut lockstep = rationed_rack();
    let mut event = EventDrivenCluster::new(rationed_rack());
    for _ in 0..257 {
        let a = lockstep.step();
        let b = event.step();
        assert_eq!(a, b);
    }
    assert_eq!(lockstep.windows(), event.windows());
    assert_eq!(
        lockstep.report().digest(),
        event.report().digest(),
        "mid-run reports must agree byte-for-byte"
    );
    // And the runs still agree after resuming to terminal.
    assert_eq!(lockstep.run_to_completion(), event.run_to_completion());
    assert_eq!(lockstep.report().digest(), event.report().digest());
}

/// Seeded event-order fuzzing: inserting each window's ticks into the
/// heap in seeded-random order must not change one bit of the run —
/// the `(window, kind, node)` keys impose a total order, so pop order
/// (and with it admission, shed order and every float) is insertion-
/// order independent.
#[test]
fn event_order_fuzzing_is_bit_invariant() {
    let mut oracle = rationed_rack();
    oracle.run_to_completion();
    let want = oracle.report().digest();
    for seed in [1u64, 42, 0x9E37_79B9, u64::MAX] {
        let mut fuzzed = EventDrivenCluster::with_event_seed(rationed_rack(), seed);
        fuzzed.run_to_completion();
        assert_eq!(
            fuzzed.report().digest(),
            want,
            "seed {seed:#x} changed the run"
        );
    }
    // The shed-heavy rotation config, too: shed order must be a
    // function of simulation state alone, never of event-queue
    // internals.
    let mut oracle = round_robin_rack();
    oracle.run_to_completion();
    let want = oracle.report().digest();
    for seed in [7u64, 0xDEAD_BEEF] {
        let mut fuzzed = EventDrivenCluster::with_event_seed(round_robin_rack(), seed);
        fuzzed.run_to_completion();
        assert_eq!(
            fuzzed.report().digest(),
            want,
            "seed {seed:#x} changed the shed rotation"
        );
    }
}

/// `into_session` hands back a session indistinguishable from a
/// lockstep one at the same window: further lockstep stepping stays
/// equivalent.
#[test]
fn into_session_resumes_lockstep_exactly() {
    let mut lockstep = rationed_rack();
    let mut event = EventDrivenCluster::new(rationed_rack());
    for _ in 0..300 {
        lockstep.step();
        event.step();
    }
    let mut handed_back = event.into_session();
    let a = lockstep.run_to_completion();
    let b = handed_back.run_to_completion();
    assert_eq!(a, b);
    assert_eq!(lockstep.report().digest(), handed_back.report().digest());
}
