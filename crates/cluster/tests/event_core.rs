//! Golden-equivalence tests for the event-driven cluster core: for
//! every configuration the lockstep stepper is the oracle, and the
//! event-driven run must reproduce its [`ClusterReport`] FNV digest
//! byte-for-byte — same outcomes, same latencies at exact `f64` bits,
//! same scheduler event counts, same per-node coupled reports. Seeded
//! event-order fuzzing additionally shows the run is independent of
//! heap insertion order (deterministic tie-breaking), covering the
//! shed-order determinism story.

use sprint_cluster::prelude::*;
use sprint_core::config::SprintConfig;
use sprint_core::fault::{FaultEvent, FaultKind, FaultPlan, FaultRates, FaultResponse};
use sprint_thermal::grid::GridThermalParams;
use sprint_workloads::suite::{InputSize, WorkloadKind};

/// The open-arrival power-rationed rack — the `rack_power_case` shape
/// at test scale: shared feed, joint thermal+power admission, staggered
/// arrivals that leave idle stretches between bursts.
fn rationed_rack() -> ClusterSession {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 8.0;
    ClusterBuilder::new(GridThermalParams::rack(3, 3).time_scaled(6000.0))
        .policy(ClusterPolicy::greedy_default())
        .power_policy(PowerPolicy::rationed_default())
        .rack_supply(RackSupplyParams::rack(9).time_scaled(6000.0))
        .config(cfg)
        .tasks(ClusterTask::arrivals(
            WorkloadKind::Sobel,
            InputSize::A,
            16,
            12,
            0.0,
            60e-6,
        ))
        .trace_capacity(0)
        .build()
}

/// A shed-heavy thermal-only rack: round-robin rotation with a tight
/// allowance, so the shed order (and its grant-rotation bookkeeping)
/// is exercised hard.
fn round_robin_rack() -> ClusterSession {
    ClusterBuilder::new(GridThermalParams::rack(2, 2).time_scaled(3000.0))
        .policy(ClusterPolicy::RoundRobin { max_sprinting: 2 })
        .tasks(ClusterTask::batch(WorkloadKind::Sobel, InputSize::A, 8, 10))
        .trace_capacity(0)
        .build()
}

/// Competitive duplication: copies race, losers are discarded — the
/// completion bookkeeping (first-finisher-wins) must survive the
/// event-driven retirement path.
fn duplicating_rack() -> ClusterSession {
    ClusterBuilder::new(GridThermalParams::rack(2, 2).time_scaled(3000.0))
        .policy(ClusterPolicy::CompetitiveDuplicate {
            admit_headroom_k: 10.0,
            copies: 2,
            cancel_losers: false,
        })
        .tasks(ClusterTask::arrivals(
            WorkloadKind::Sobel,
            InputSize::A,
            8,
            6,
            0.0,
            150e-6,
        ))
        .trace_capacity(0)
        .build()
}

/// Duplication with same-window loser cancellation: the winner's
/// commit preempts every losing replica through the machine-level
/// cancel API, mid-window — the cancelled-scratch handoff between the
/// engines (losers above the winner rest *this* window, losers below
/// it owe a retirement tick next window) is exactly what this config
/// hammers.
fn cancelling_rack() -> ClusterSession {
    ClusterBuilder::new(GridThermalParams::rack(2, 2).time_scaled(3000.0))
        .policy(ClusterPolicy::CompetitiveDuplicate {
            admit_headroom_k: 10.0,
            copies: 2,
            cancel_losers: true,
        })
        .tasks(ClusterTask::arrivals(
            WorkloadKind::Sobel,
            InputSize::A,
            8,
            6,
            0.0,
            150e-6,
        ))
        .trace_capacity(0)
        .build()
}

/// A rack that trips its time limit with tasks outstanding, so the
/// terminal catch-up path is pinned on the `TimeLimit` outcome too.
fn time_limited_rack() -> ClusterSession {
    ClusterBuilder::new(GridThermalParams::rack(2, 1).time_scaled(3000.0))
        .policy(ClusterPolicy::NoSprint)
        .tasks(ClusterTask::batch(WorkloadKind::Sobel, InputSize::B, 8, 12))
        .max_time_s(0.002)
        .trace_capacity(0)
        .build()
}

/// Runs `build()` both ways and asserts byte-identical reports (via
/// the FNV digest) and identical terminal outcomes and window counts.
fn assert_equivalent(build: impl Fn() -> ClusterSession, label: &str) {
    let mut lockstep = build();
    let lockstep_outcome = lockstep.run_to_completion();
    let lockstep_report = lockstep.report();

    let mut event = EventDrivenCluster::new(build());
    let event_outcome = event.run_to_completion();
    let event_report = event.report();

    assert_eq!(lockstep_outcome, event_outcome, "{label}: outcome");
    assert_eq!(lockstep.windows(), event.windows(), "{label}: window count");
    assert_eq!(
        lockstep_report.digest(),
        event_report.digest(),
        "{label}: the event-driven run must reproduce the lockstep \
         report digest byte-for-byte \
         (lockstep completed {} / event {}, lockstep sheds {}+{} / \
         event {}+{})",
        lockstep_report.completed,
        event_report.completed,
        lockstep_report.sheds,
        lockstep_report.power_sheds,
        event_report.sheds,
        event_report.power_sheds,
    );
}

#[test]
fn event_core_matches_lockstep_on_the_rationed_rack() {
    assert_equivalent(rationed_rack, "rationed open arrivals");
}

#[test]
fn event_core_matches_lockstep_on_round_robin_shedding() {
    assert_equivalent(round_robin_rack, "round-robin shed rotation");
}

#[test]
fn event_core_matches_lockstep_on_competitive_duplication() {
    assert_equivalent(duplicating_rack, "competitive duplication");
}

/// Tentpole invariant for the cancellation refactor: with losers
/// cancelled the window their winner commits, the event-driven run
/// still reproduces the lockstep digest byte-for-byte — and the
/// cancellation actually bites (a nonzero cancelled-copies counter;
/// the discard baseline reports zero by construction).
#[test]
fn event_core_matches_lockstep_under_loser_cancellation() {
    assert_equivalent(cancelling_rack, "competitive duplication + cancel");
    let mut run = cancelling_rack();
    run.run_to_completion();
    let report = run.report();
    assert!(
        report.cancelled_copies > 0,
        "no losing replica was ever cancelled — the config never raced copies"
    );
    assert_eq!(report.completed, report.total_tasks);
    assert!(report.task_conservation_holds());
    // The discard baseline reports zero cancellations by construction.
    let mut baseline = duplicating_rack();
    baseline.run_to_completion();
    assert_eq!(baseline.report().cancelled_copies, 0);
}

/// Event-order fuzzing over the cancellation path, too: the mid-window
/// cancel must be a function of simulation state alone.
#[test]
fn event_order_fuzzing_is_bit_invariant_under_cancellation() {
    let mut oracle = cancelling_rack();
    oracle.run_to_completion();
    let want = oracle.report().digest();
    for seed in [3u64, 0xCAFE_F00D] {
        let mut fuzzed = EventDrivenCluster::with_event_seed(cancelling_rack(), seed);
        fuzzed.run_to_completion();
        assert_eq!(
            fuzzed.report().digest(),
            want,
            "seed {seed:#x} changed the cancelling run"
        );
    }
}

#[test]
fn event_core_matches_lockstep_at_the_time_limit() {
    assert_equivalent(time_limited_rack, "time-limited drain");
}

/// Mid-run parity: a report taken *before* the queue drains must also
/// match the oracle at the same window count — the lazy rest ledgers
/// settle at any observation point, not just at terminal.
#[test]
fn event_core_matches_lockstep_mid_run() {
    let mut lockstep = rationed_rack();
    let mut event = EventDrivenCluster::new(rationed_rack());
    for _ in 0..257 {
        let a = lockstep.step();
        let b = event.step();
        assert_eq!(a, b);
    }
    assert_eq!(lockstep.windows(), event.windows());
    assert_eq!(
        lockstep.report().digest(),
        event.report().digest(),
        "mid-run reports must agree byte-for-byte"
    );
    // And the runs still agree after resuming to terminal.
    assert_eq!(lockstep.run_to_completion(), event.run_to_completion());
    assert_eq!(lockstep.report().digest(), event.report().digest());
}

/// Seeded event-order fuzzing: inserting each window's ticks into the
/// heap in seeded-random order must not change one bit of the run —
/// the `(window, kind, node)` keys impose a total order, so pop order
/// (and with it admission, shed order and every float) is insertion-
/// order independent.
#[test]
fn event_order_fuzzing_is_bit_invariant() {
    let mut oracle = rationed_rack();
    oracle.run_to_completion();
    let want = oracle.report().digest();
    for seed in [1u64, 42, 0x9E37_79B9, u64::MAX] {
        let mut fuzzed = EventDrivenCluster::with_event_seed(rationed_rack(), seed);
        fuzzed.run_to_completion();
        assert_eq!(
            fuzzed.report().digest(),
            want,
            "seed {seed:#x} changed the run"
        );
    }
    // The shed-heavy rotation config, too: shed order must be a
    // function of simulation state alone, never of event-queue
    // internals.
    let mut oracle = round_robin_rack();
    oracle.run_to_completion();
    let want = oracle.report().digest();
    for seed in [7u64, 0xDEAD_BEEF] {
        let mut fuzzed = EventDrivenCluster::with_event_seed(round_robin_rack(), seed);
        fuzzed.run_to_completion();
        assert_eq!(
            fuzzed.report().digest(),
            want,
            "seed {seed:#x} changed the shed rotation"
        );
    }
}

/// A handcrafted plan that exercises every fault kind — stuck-cold
/// and biased sensors (with clears), every supply fault including a
/// sticky regulator death, and node crash/recover on both busy and
/// idle nodes — stamped across the rationed rack's active phase.
fn dense_fault_plan(response: FaultResponse) -> FaultPlan {
    let ev = |window: u64, node: u32, kind: FaultKind| FaultEvent { window, node, kind };
    FaultPlan::new(vec![
        ev(3, 2, FaultKind::SensorStuck(20.0)),
        ev(5, 0, FaultKind::SupplyCollapse(2.0)),
        ev(8, 4, FaultKind::NodeCrash),
        ev(12, 2, FaultKind::SensorClear),
        ev(15, 1, FaultKind::SensorBias(30.0)),
        ev(30, 4, FaultKind::NodeRecover),
        ev(40, 3, FaultKind::SupplyBrownout),
        ev(60, 3, FaultKind::SupplyClear),
        ev(80, 5, FaultKind::NodeCrash),
        ev(90, 1, FaultKind::SensorClear),
        ev(110, 0, FaultKind::SupplyClear),
        ev(120, 6, FaultKind::SupplyDead),
        ev(150, 6, FaultKind::SupplyClear), // sticky: death ignores it
        ev(200, 7, FaultKind::NodeCrash),
        ev(210, 7, FaultKind::NodeRecover),
        ev(260, 8, FaultKind::SensorDropout),
        ev(320, 8, FaultKind::SensorClear),
        ev(400, 2, FaultKind::NodeCrash),
    ])
    .with_retries(2, 16)
    .with_response(response)
}

/// The rationed rack under the dense handcrafted plan. A finite time
/// limit bounds runs where quarantine leaves tasks unservable.
fn faulted_rationed_rack(response: FaultResponse) -> ClusterSession {
    let mut cfg = SprintConfig::hpca_parallel();
    cfg.tdp_w = 8.0;
    ClusterBuilder::new(GridThermalParams::rack(3, 3).time_scaled(6000.0))
        .policy(ClusterPolicy::greedy_default())
        .power_policy(PowerPolicy::rationed_default())
        .rack_supply(RackSupplyParams::rack(9).time_scaled(6000.0))
        .config(cfg)
        .tasks(ClusterTask::arrivals(
            WorkloadKind::Sobel,
            InputSize::A,
            16,
            12,
            0.0,
            60e-6,
        ))
        .fault_plan(dense_fault_plan(response))
        .max_time_s(0.004)
        .trace_capacity(0)
        .build()
}

/// A small rack under a seeded random plan — the conservation-sweep
/// fixture (4 nodes, batch arrivals, bounded run).
fn seeded_faulted_rack(seed: u64, response: FaultResponse) -> ClusterSession {
    let rates = FaultRates {
        mean_sensor_gap_windows: 60,
        sensor_hold_windows: 40,
        mean_crash_gap_windows: 300,
        crash_hold_windows: 50,
        mean_supply_gap_windows: 120,
        supply_hold_windows: 40,
    };
    ClusterBuilder::new(GridThermalParams::rack(2, 2).time_scaled(3000.0))
        .policy(ClusterPolicy::greedy_default())
        .tasks(ClusterTask::batch(WorkloadKind::Sobel, InputSize::A, 8, 10))
        .fault_plan(FaultPlan::seeded(seed, 4, 4000, rates).with_response(response))
        .max_time_s(0.004)
        .trace_capacity(0)
        .build()
}

/// Tentpole invariant: under a plan that exercises every fault kind,
/// the event-driven run still reproduces the lockstep digest
/// byte-for-byte — in both response modes — and the plan actually
/// bites (nonzero fault counters).
#[test]
fn event_core_matches_lockstep_under_dense_faults() {
    for response in [FaultResponse::Aware, FaultResponse::Oblivious] {
        assert_equivalent(
            || faulted_rationed_rack(response),
            &format!("dense faults ({response:?})"),
        );
    }
    let mut run = faulted_rationed_rack(FaultResponse::Aware);
    run.run_to_completion();
    let report = run.report();
    assert!(report.fault_events > 0, "the plan never fired");
    assert!(report.node_crashes > 0, "no crash was applied");
    assert!(report.sensor_faults > 0, "no sensor fault was applied");
    assert!(report.supply_faults > 0, "no supply fault was applied");
    assert!(report.quarantined_nodes > 0, "no busy node was quarantined");
    assert!(report.task_conservation_holds(), "a task was lost");
}

/// Satellite: the seeded event-order fuzzing, with fault ticks
/// interleaved on the heap — insertion order must still not change a
/// bit of the run.
#[test]
fn event_order_fuzzing_is_bit_invariant_under_faults() {
    for response in [FaultResponse::Aware, FaultResponse::Oblivious] {
        let mut oracle = faulted_rationed_rack(response);
        oracle.run_to_completion();
        let want = oracle.report().digest();
        for seed in [11u64, 0xFEED_FACE, u64::MAX - 1] {
            let mut fuzzed =
                EventDrivenCluster::with_event_seed(faulted_rationed_rack(response), seed);
            fuzzed.run_to_completion();
            assert_eq!(
                fuzzed.report().digest(),
                want,
                "seed {seed:#x} changed the faulted run ({response:?})"
            );
        }
    }
}

/// Satellite: task conservation over random fault plans, on both
/// engines — every submitted task ends completed, failed, or
/// outstanding; drained runs leave nothing outstanding.
#[test]
fn task_conservation_holds_under_random_fault_plans() {
    for seed in [2012u64, 7, 0x0BAD_5EED] {
        for response in [FaultResponse::Aware, FaultResponse::Oblivious] {
            let mut lockstep = seeded_faulted_rack(seed, response);
            let outcome = lockstep.run_to_completion();
            let report = lockstep.report();
            assert!(
                report.task_conservation_holds(),
                "seed {seed:#x} ({response:?}): conservation broke: \
                 {} completed + {} failed + {} outstanding != {}",
                report.completed,
                report.failed_tasks,
                report.outstanding_tasks,
                report.total_tasks,
            );
            if outcome == ClusterOutcome::Drained {
                assert_eq!(
                    report.outstanding_tasks, 0,
                    "drained with tasks outstanding"
                );
            }
            let mut event = EventDrivenCluster::new(seeded_faulted_rack(seed, response));
            event.run_to_completion();
            let event_report = event.report();
            assert!(event_report.task_conservation_holds());
            assert_eq!(
                report.digest(),
                event_report.digest(),
                "seed {seed:#x} ({response:?}): faulted event run diverged"
            );
        }
    }
}

/// `into_session` hands back a session indistinguishable from a
/// lockstep one at the same window: further lockstep stepping stays
/// equivalent.
#[test]
fn into_session_resumes_lockstep_exactly() {
    let mut lockstep = rationed_rack();
    let mut event = EventDrivenCluster::new(rationed_rack());
    for _ in 0..300 {
        lockstep.step();
        event.step();
    }
    let mut handed_back = event.into_session();
    let a = lockstep.run_to_completion();
    let b = handed_back.run_to_completion();
    assert_eq!(a, b);
    assert_eq!(lockstep.report().digest(), handed_back.report().digest());
}
