//! Ultracapacitor model (Section 6).
//!
//! The paper's example: a 25 F NESSCAP cell at 2.7 V rated voltage weighs
//! 6.5 g, stores 91 J usable (182 J total at rating per the paper's
//! figure), delivers 20 A peaks and leaks under 0.1 mA.

use serde::{Deserialize, Serialize};

use crate::battery::SupplyError;

/// An ultracapacitor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ultracapacitor {
    /// Capacitance, farads.
    pub capacitance_f: f64,
    /// Rated (maximum) voltage, volts.
    pub rated_v: f64,
    /// Peak discharge current, amps.
    pub peak_current_a: f64,
    /// Leakage current, amps.
    pub leakage_a: f64,
    /// Mass, grams.
    pub mass_g: f64,
    /// Present voltage, volts.
    voltage_v: f64,
}

impl Ultracapacitor {
    /// Creates a capacitor charged to its rated voltage.
    ///
    /// # Panics
    ///
    /// Panics on non-positive ratings.
    pub fn new(
        capacitance_f: f64,
        rated_v: f64,
        peak_current_a: f64,
        leakage_a: f64,
        mass_g: f64,
    ) -> Self {
        assert!(
            capacitance_f > 0.0 && rated_v > 0.0,
            "bad capacitor ratings"
        );
        assert!(
            peak_current_a > 0.0 && mass_g > 0.0,
            "bad capacitor ratings"
        );
        assert!(leakage_a >= 0.0, "leakage cannot be negative");
        Self {
            capacitance_f,
            rated_v,
            peak_current_a,
            leakage_a,
            mass_g,
            voltage_v: rated_v,
        }
    }

    /// The paper's 25 F / 2.7 V / 20 A / 6.5 g NESSCAP example.
    pub fn nesscap_25f() -> Self {
        Self::new(25.0, 2.7, 20.0, 0.1e-3, 6.5)
    }

    /// Present voltage, volts.
    pub fn voltage_v(&self) -> f64 {
        self.voltage_v
    }

    /// Total stored energy at the present voltage, joules
    /// (`E = C V^2 / 2`; 91 J at 2.7 V for the 25 F part — the paper's
    /// "182 joules" counts the C·V² figure of merit).
    pub fn stored_j(&self) -> f64 {
        0.5 * self.capacitance_f * self.voltage_v * self.voltage_v
    }

    /// Energy extractable before the voltage falls below `v_min` (the
    /// regulator's dropout), joules.
    pub fn usable_j(&self, v_min: f64) -> f64 {
        if self.voltage_v <= v_min {
            0.0
        } else {
            0.5 * self.capacitance_f * (self.voltage_v * self.voltage_v - v_min * v_min)
        }
    }

    /// Maximum instantaneous power at the present voltage, watts.
    pub fn max_power_w(&self) -> f64 {
        self.voltage_v * self.peak_current_a
    }

    /// Draws `power_w` for `dt_s` seconds (plus leakage), updating the
    /// voltage.
    ///
    /// # Errors
    ///
    /// Fails when the current limit is exceeded or the stored energy is
    /// insufficient.
    pub fn draw(&mut self, power_w: f64, dt_s: f64) -> Result<(), SupplyError> {
        if power_w > self.max_power_w() {
            return Err(SupplyError::CurrentLimit {
                requested_w: power_w,
                available_w: self.max_power_w(),
            });
        }
        let energy = power_w * dt_s + self.leakage_a * self.voltage_v * dt_s;
        let stored = self.stored_j();
        if energy >= stored {
            return Err(SupplyError::Depleted);
        }
        let remaining = stored - energy;
        self.voltage_v = (2.0 * remaining / self.capacitance_f).sqrt();
        Ok(())
    }

    /// Recharges toward the rated voltage with `joules` of input energy.
    pub fn recharge(&mut self, joules: f64) {
        let e =
            (self.stored_j() + joules).min(0.5 * self.capacitance_f * self.rated_v * self.rated_v);
        self.voltage_v = (2.0 * e / self.capacitance_f).sqrt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesscap_matches_paper_numbers() {
        let c = Ultracapacitor::nesscap_25f();
        // 0.5 * 25 * 2.7^2 = 91 J stored; C*V^2 = 182 J (paper's figure).
        assert!((c.stored_j() - 91.125).abs() < 1e-9);
        assert!((c.max_power_w() - 54.0).abs() < 1e-9);
        assert!(c.mass_g < 10.0, "form factor fits a phone");
    }

    #[test]
    fn sixteen_joule_sprint_fits_easily() {
        let mut c = Ultracapacitor::nesscap_25f();
        // 16 W for 1 s.
        for _ in 0..1000 {
            c.draw(16.0, 1e-3).unwrap();
        }
        assert!(
            c.voltage_v() > 2.3,
            "voltage barely sags: {:.2}",
            c.voltage_v()
        );
    }

    #[test]
    fn voltage_drops_as_energy_leaves() {
        let mut c = Ultracapacitor::nesscap_25f();
        let v0 = c.voltage_v();
        c.draw(50.0, 0.5).unwrap();
        assert!(c.voltage_v() < v0);
        let expected = (2.0f64 * (91.125 - 25.0 - 0.1e-3 * 2.7 * 0.5) / 25.0).sqrt();
        assert!((c.voltage_v() - expected).abs() < 1e-3);
    }

    #[test]
    fn leakage_is_negligible_over_seconds() {
        let mut c = Ultracapacitor::nesscap_25f();
        let e0 = c.stored_j();
        c.draw(0.0, 10.0).unwrap();
        assert!(e0 - c.stored_j() < 0.01, "leakage < 10 mJ over 10 s");
    }

    #[test]
    fn overcurrent_rejected() {
        let mut c = Ultracapacitor::nesscap_25f();
        assert!(matches!(
            c.draw(100.0, 0.1),
            Err(SupplyError::CurrentLimit { .. })
        ));
    }

    #[test]
    fn recharge_restores_rated_voltage() {
        let mut c = Ultracapacitor::nesscap_25f();
        c.draw(40.0, 1.0).unwrap();
        c.recharge(1e6);
        assert!((c.voltage_v() - 2.7).abs() < 1e-12);
    }
}
