//! Property-based tests for the power-grid transient simulator.

use proptest::prelude::*;
use sprint_powergrid::activation::ActivationSchedule;
use sprint_powergrid::grid::PdnParams;
use sprint_powergrid::netlist::{Circuit, Node};
use sprint_powergrid::transient::{Integration, TransientSim};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A resistive divider settles exactly to the analytic ratio for any
    /// component values.
    #[test]
    fn divider_ratio(r1 in 1.0f64..1e4, r2 in 1.0f64..1e4, v in 0.1f64..10.0) {
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let mid = ckt.node();
        ckt.vsource(vin, Node::GROUND, v);
        ckt.resistor(vin, mid, r1);
        ckt.resistor(mid, Node::GROUND, r2);
        let sim = TransientSim::new(&ckt, 1e-6, Integration::Trapezoidal).unwrap();
        let expected = v * r2 / (r1 + r2);
        prop_assert!((sim.voltage(mid) - expected).abs() < 1e-9 * v.max(1.0));
    }

    /// RC step response matches the analytic solution at one time constant
    /// across a wide range of R, C and load values.
    #[test]
    fn rc_analytic_one_tau(
        r in 10.0f64..1e4,
        c in 1e-9f64..1e-5,
        i_load in 1e-5f64..1e-2,
    ) {
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let out = ckt.node();
        ckt.vsource(vin, Node::GROUND, 1.0);
        ckt.resistor(vin, out, r);
        ckt.capacitor(out, Node::GROUND, c);
        let load = ckt.isource(out, Node::GROUND, 0.0);
        let tau = r * c;
        let dt = tau / 200.0;
        let mut sim = TransientSim::new(&ckt, dt, Integration::Trapezoidal).unwrap();
        sim.set_current(load, i_load);
        sim.run(200);
        let drop = i_load * r;
        let expected = 1.0 - drop * (1.0 - (-1.0f64).exp());
        prop_assert!(
            (sim.voltage(out) - expected).abs() < 1e-3 * drop.max(1e-3),
            "got {}, want {expected}",
            sim.voltage(out)
        );
    }

    /// Passivity: node voltages in the PDN never exceed the regulator
    /// voltage (no active elements, so no boost is possible) and the min
    /// supply never goes below zero for sane loads.
    #[test]
    fn pdn_voltages_bounded(cores in 1usize..6, load_frac in 0.0f64..2.0) {
        let params = PdnParams::hpca().with_cores(cores);
        let pdn = params.build();
        let mut sim = TransientSim::new(pdn.circuit(), 5e-9, Integration::Trapezoidal).unwrap();
        let amps = params.core_current_a * load_frac;
        for &c in pdn.cores() {
            sim.set_current(c, amps);
        }
        for _ in 0..2000 {
            sim.step();
            let v = pdn.min_core_supply_v(&sim);
            prop_assert!(v <= 1.2 + 1e-6, "supply exceeded source: {v}");
            prop_assert!(v > 0.0, "supply collapsed: {v}");
        }
    }

    /// Slower linear ramps never make the worst-case bounce worse.
    #[test]
    fn slower_ramps_are_no_worse(scale in 1.0f64..8.0) {
        let params = PdnParams::hpca().with_cores(4);
        let fast = run_ramp(&params, 2e-6);
        let slow = run_ramp(&params, 2e-6 * scale);
        prop_assert!(
            slow + 1e-4 >= fast,
            "slow ramp min {slow} below fast ramp min {fast}"
        );
    }
}

/// Runs a linear activation ramp and returns the minimum observed supply.
fn run_ramp(params: &PdnParams, total_s: f64) -> f64 {
    use sprint_powergrid::activation::drive_activation;
    use sprint_powergrid::integrity::ToleranceSpec;
    let pdn = params.build();
    let mut sim = TransientSim::new(pdn.circuit(), 5e-9, Integration::Trapezoidal).unwrap();
    let result = drive_activation(
        &pdn,
        &mut sim,
        ActivationSchedule::LinearRamp { total_s },
        10e-9,
        total_s + 10e-6,
        4,
        &ToleranceSpec::two_percent_of(1.2),
    );
    result.report.min_v
}
