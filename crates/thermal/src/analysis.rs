//! Sprint transient analyses: Figure 4 of the paper.
//!
//! [`simulate_sprint`] drives a [`PhoneThermal`] at a fixed sprint power
//! until the junction reaches its limit (Figure 4(a)); [`simulate_cooldown`]
//! then lets it cool (Figure 4(b)). Both return sampled traces plus the
//! derived summary quantities quoted in the paper (melt plateau duration,
//! total sprint duration, time to approach ambient).

use serde::{Deserialize, Serialize};

use crate::phone::PhoneThermal;
use crate::trace::Trace;

/// Result of a sprint-initiation transient (Figure 4(a)).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SprintTransient {
    /// Time at which the PCM began melting, seconds (None if it never did).
    pub t_melt_start_s: Option<f64>,
    /// Time at which the PCM finished melting, seconds.
    pub t_melt_end_s: Option<f64>,
    /// Total sprint duration until the junction reached `t_max_c`, seconds.
    /// `None` when the sprint power is sustainable indefinitely.
    pub duration_s: Option<f64>,
    /// Sampled time series (junction temperature, PCM temperature, melt
    /// fraction).
    pub trace: Trace,
}

impl SprintTransient {
    /// Length of the constant-temperature melt plateau, seconds.
    pub fn plateau_s(&self) -> Option<f64> {
        match (self.t_melt_start_s, self.t_melt_end_s) {
            (Some(a), Some(b)) => Some(b - a),
            _ => None,
        }
    }
}

/// Result of a post-sprint cooldown transient (Figure 4(b)).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CooldownTransient {
    /// Time for the PCM to start re-freezing (reach the melting point from
    /// above), seconds from cooldown start.
    pub t_freeze_start_s: Option<f64>,
    /// Time for the PCM to finish re-freezing, seconds from cooldown start.
    pub t_freeze_end_s: Option<f64>,
    /// Time for the junction to come within `epsilon_k` of ambient, seconds
    /// from cooldown start (`None` on timeout).
    pub t_near_ambient_s: Option<f64>,
    /// Sampled time series.
    pub trace: Trace,
}

/// Simulates a sprint at `power_w` starting from the model's current state,
/// sampling every `sample_dt_s`, aborting after `max_time_s`.
///
/// The model is left in its end-of-sprint state so a cooldown can follow.
pub fn simulate_sprint(
    phone: &mut PhoneThermal,
    power_w: f64,
    sample_dt_s: f64,
    max_time_s: f64,
) -> SprintTransient {
    assert!(
        sample_dt_s > 0.0 && max_time_s > 0.0,
        "durations must be positive"
    );
    phone.set_chip_power_w(power_w);
    let mut trace = Trace::new();
    let t0 = phone.time_s();
    let mut t_melt_start = None;
    let mut t_melt_end = None;
    let mut duration = None;
    trace.sample(phone);
    loop {
        let elapsed = phone.time_s() - t0;
        if elapsed >= max_time_s {
            break;
        }
        phone.advance(sample_dt_s);
        trace.sample(phone);
        let f = phone.melt_fraction();
        if t_melt_start.is_none() && f > 0.0 {
            t_melt_start = Some(phone.time_s() - t0);
        }
        if t_melt_end.is_none() && f >= 1.0 {
            t_melt_end = Some(phone.time_s() - t0);
        }
        if phone.at_thermal_limit() {
            duration = Some(phone.time_s() - t0);
            break;
        }
    }
    SprintTransient {
        t_melt_start_s: t_melt_start,
        t_melt_end_s: t_melt_end,
        duration_s: duration,
        trace,
    }
}

/// Simulates cooldown (chip power set to zero — or `idle_power_w`) from the
/// model's current state until the junction is within `epsilon_k` of
/// ambient, sampling every `sample_dt_s`, for at most `max_time_s`.
pub fn simulate_cooldown(
    phone: &mut PhoneThermal,
    idle_power_w: f64,
    epsilon_k: f64,
    sample_dt_s: f64,
    max_time_s: f64,
) -> CooldownTransient {
    assert!(
        sample_dt_s > 0.0 && max_time_s > 0.0,
        "durations must be positive"
    );
    assert!(epsilon_k > 0.0, "epsilon must be positive");
    phone.set_chip_power_w(idle_power_w);
    let ambient = phone.params().ambient_c;
    let t0 = phone.time_s();
    let mut trace = Trace::new();
    trace.sample(phone);
    let started_molten = phone.melt_fraction() > 0.0;
    let mut t_freeze_start = if started_molten { None } else { Some(0.0) };
    let mut t_freeze_end = if started_molten { None } else { Some(0.0) };
    let mut t_near_ambient = None;
    loop {
        let elapsed = phone.time_s() - t0;
        if elapsed >= max_time_s {
            break;
        }
        phone.advance(sample_dt_s);
        trace.sample(phone);
        let f = phone.melt_fraction();
        if started_molten && t_freeze_start.is_none() && f < 1.0 {
            t_freeze_start = Some(phone.time_s() - t0);
        }
        if started_molten && t_freeze_end.is_none() && f <= 0.0 {
            t_freeze_end = Some(phone.time_s() - t0);
        }
        if t_near_ambient.is_none() && (phone.junction_temp_c() - ambient).abs() <= epsilon_k {
            t_near_ambient = Some(phone.time_s() - t0);
            break;
        }
    }
    CooldownTransient {
        t_freeze_start_s: t_freeze_start,
        t_freeze_end_s: t_freeze_end,
        t_near_ambient_s: t_near_ambient,
        trace,
    }
}

/// Approximate cooldown duration rule of thumb from Section 4.5: sprint
/// duration multiplied by the ratio of sprint power to nominal TDP.
pub fn cooldown_rule_of_thumb_s(sprint_duration_s: f64, sprint_power_w: f64, tdp_w: f64) -> f64 {
    assert!(tdp_w > 0.0, "TDP must be positive");
    sprint_duration_s * sprint_power_w / tdp_w
}

/// Sizes the PCM for a design target: the smallest mass (grams) whose
/// simulated sprint at `power_w` lasts at least `target_duration_s`.
/// Returns `None` if even `max_mass_g` cannot reach the target.
///
/// This is the inverse of the Section 4.2 sizing rule, solved against the
/// full transient model (which accounts for leakage to ambient during the
/// sprint — the analytic `E = m·L` rule under-sizes by that leakage).
pub fn pcm_mass_for_sprint_g(
    base: &crate::phone::PhoneThermalParams,
    power_w: f64,
    target_duration_s: f64,
    max_mass_g: f64,
) -> Option<f64> {
    assert!(
        target_duration_s > 0.0 && power_w > 0.0,
        "targets must be positive"
    );
    assert!(max_mass_g > 0.0, "mass bound must be positive");
    let duration_for = |mass_g: f64| -> f64 {
        let mut phone = base.clone().with_pcm_mass_g(mass_g).build();
        let dt = (target_duration_s / 400.0).max(1e-5);
        simulate_sprint(&mut phone, power_w, dt, target_duration_s * 4.0)
            .duration_s
            .unwrap_or(f64::INFINITY)
    };
    if duration_for(max_mass_g) < target_duration_s {
        return None;
    }
    // Bisect on mass; duration is monotone in mass.
    let (mut lo, mut hi) = (0.0f64, max_mass_g);
    for _ in 0..24 {
        let mid = 0.5 * (lo + hi);
        if mid <= 0.0 {
            break;
        }
        if duration_for(mid) >= target_duration_s {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phone::PhoneThermalParams;

    #[test]
    fn figure_4a_shape_16w_sprint() {
        let mut phone = PhoneThermalParams::hpca().build();
        let sprint = simulate_sprint(&mut phone, 16.0, 0.002, 5.0);
        let duration = sprint.duration_s.expect("16 W must exceed thermal limit");
        // Paper: plateau ≈ 0.95 s, total "a little over 1 s".
        let plateau = sprint.plateau_s().expect("PCM must melt completely");
        assert!(
            (0.8..1.2).contains(&plateau),
            "plateau {plateau:.2} s should be ≈ 0.95 s"
        );
        assert!(
            (1.0..1.6).contains(&duration),
            "sprint duration {duration:.2} s should be a little over 1 s"
        );
        // Melting must begin quickly compared to the plateau.
        assert!(sprint.t_melt_start_s.unwrap() < 0.35);
    }

    #[test]
    fn figure_4b_cooldown_approaches_ambient_in_tens_of_seconds() {
        let mut phone = PhoneThermalParams::hpca().build();
        let _ = simulate_sprint(&mut phone, 16.0, 0.002, 5.0);
        let cd = simulate_cooldown(&mut phone, 0.0, 3.0, 0.02, 120.0);
        let t = cd.t_near_ambient_s.expect("must cool near ambient");
        // Paper: "close to ambient after about 24 s".
        assert!(
            (10.0..40.0).contains(&t),
            "cooldown {t:.1} s should be in the tens of seconds"
        );
        // Refreeze completes before we are near ambient.
        let freeze_end = cd.t_freeze_end_s.expect("PCM must re-freeze");
        assert!(freeze_end < t);
    }

    #[test]
    fn sustainable_power_never_terminates_sprint() {
        let mut phone = PhoneThermalParams::hpca().build();
        let sprint = simulate_sprint(&mut phone, 0.9, 0.05, 30.0);
        assert!(sprint.duration_s.is_none());
        assert!(
            sprint.t_melt_start_s.is_none(),
            "0.9 W must not melt the PCM"
        );
    }

    #[test]
    fn higher_sprint_power_shortens_sprint() {
        let mut a = PhoneThermalParams::hpca().build();
        let mut b = PhoneThermalParams::hpca().build();
        let d8 = simulate_sprint(&mut a, 8.0, 0.002, 20.0)
            .duration_s
            .unwrap();
        let d16 = simulate_sprint(&mut b, 16.0, 0.002, 20.0)
            .duration_s
            .unwrap();
        assert!(
            d8 > 1.5 * d16,
            "8 W sprint ({d8:.2} s) should last much longer than 16 W ({d16:.2} s)"
        );
    }

    #[test]
    fn rule_of_thumb_matches_paper_example() {
        // 1 s sprint at 16 W on a 1 W TDP system → ~16 s cooldown.
        assert!((cooldown_rule_of_thumb_s(1.0, 16.0, 1.0) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn pcm_sizing_inverts_the_transient() {
        // Ask for a one-second 16 W sprint: the answer should be near the
        // paper's ~150 mg (we land at 140 mg for 1.13 s, so slightly less
        // mass suffices for exactly 1.0 s).
        let base = PhoneThermalParams::hpca();
        let mass = pcm_mass_for_sprint_g(&base, 16.0, 1.0, 1.0).expect("1 g is plenty");
        assert!(
            (0.08..0.16).contains(&mass),
            "expected ≈ 0.12 g for a 1 s sprint, got {mass:.3} g"
        );
        // The sized design actually delivers the target.
        let mut phone = base.with_pcm_mass_g(mass).build();
        let d = simulate_sprint(&mut phone, 16.0, 0.002, 5.0)
            .duration_s
            .unwrap();
        assert!(d >= 0.99, "sized sprint lasts {d:.2} s");
    }

    #[test]
    fn pcm_sizing_reports_unreachable_targets() {
        let base = PhoneThermalParams::hpca();
        // A 100 s sprint at 16 W needs ~15 g of PCM; 0.2 g cannot do it.
        assert!(pcm_mass_for_sprint_g(&base, 16.0, 100.0, 0.2).is_none());
    }

    #[test]
    fn limited_pcm_sprint_is_much_shorter() {
        let mut full = PhoneThermalParams::hpca().build();
        let mut lim = PhoneThermalParams::limited().build();
        let df = simulate_sprint(&mut full, 16.0, 0.002, 5.0)
            .duration_s
            .unwrap();
        let dl = simulate_sprint(&mut lim, 16.0, 0.0005, 5.0)
            .duration_s
            .unwrap();
        assert!(
            df > 5.0 * dl,
            "full-PCM sprint {df:.3} s should dwarf limited {dl:.3} s"
        );
    }
}
