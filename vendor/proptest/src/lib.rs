//! Offline stand-in for `proptest`, covering the slice this workspace's
//! property tests use: the `proptest!` macro with a `proptest_config`
//! inner attribute, numeric-range strategies, `prop::collection::vec`,
//! and `prop_assert!`/`prop_assert_eq!`.
//!
//! Semantics: each test body runs `cases` times against deterministic
//! pseudo-random samples (seeded from the test name, so failures
//! reproduce exactly across runs). There is no shrinking — a failing
//! case panics with the sampled values via the assertion message.

use std::ops::Range;

/// Run-count configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic generator backing the mini-runner (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator; test macros seed from the test-name hash.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash of a test name, used as the per-test seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// A value generator (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

/// Strategy combinators namespace (subset of `proptest::prelude::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy producing `Vec`s with lengths drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Vectors of `element` values with a length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.clone().generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Property assertion (maps to `assert!` — no shrinking in the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Defines `#[test]` functions that run their body over many sampled
/// inputs. Supports the `#![proptest_config(...)]` inner attribute and
/// `name in strategy` argument bindings, like the real macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($tail:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($tail)* }
    };
    ($($tail:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($tail)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($tail:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($tail)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 1usize..8, b in 0.5f64..2.0) {
            prop_assert!((1..8).contains(&a));
            prop_assert!((0.5..2.0).contains(&b));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0.0f64..1.0, 1..5)) {
            prop_assert!((1..5).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::new(crate::seed_from_name("t"));
        let mut b = crate::TestRng::new(crate::seed_from_name("t"));
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
