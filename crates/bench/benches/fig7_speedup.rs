//! Criterion bench: one Figure 7 configuration (sobel, 16-core sprint).

use criterion::{criterion_group, criterion_main, Criterion};
use sprint_bench::harness::{run_coupled, ThermalDesign};
use sprint_core::config::SprintConfig;
use sprint_workloads::suite::{InputSize, WorkloadKind};

fn bench_speedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("sobel_A_parallel_sprint", |b| {
        b.iter(|| {
            let o = run_coupled(
                WorkloadKind::Sobel,
                InputSize::A,
                16,
                SprintConfig::hpca_parallel(),
                ThermalDesign::FullPcm,
            );
            std::hint::black_box(o.time_s)
        })
    });
    g.bench_function("kmeans_A_limited_sprint", |b| {
        b.iter(|| {
            let o = run_coupled(
                WorkloadKind::Kmeans,
                InputSize::A,
                16,
                SprintConfig::hpca_parallel(),
                ThermalDesign::LimitedPcm,
            );
            std::hint::black_box(o.time_s)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_speedup);
criterion_main!(benches);
